//! The incremental maintenance procedure (Def. 4.5).
//!
//! A [`SketchMaintainer`] owns everything the sketch store keeps per query
//! (paper §2): the sketch itself, the incremental operator state `S`, and
//! the database version the sketch was last maintained at. `maintain`
//! implements `I(Q, Φ, S, Δ𝒟) = (ΔP, S′)`: fetch the annotated delta
//! since the last maintained version, push it through the operator tree,
//! merge the result deltas into a sketch delta, apply it.

use crate::delta::AnnotDelta;
use crate::metrics::MaintMetrics;
use crate::ops::{IncNode, MaintCtx, MergeOp, OpConfig};
use crate::opt::pushdown::pushable_predicates;
use crate::Result;
use imp_engine::{Bag, Database};
use imp_sketch::{annotate_delta, AnnotatedDeltaRow, PartitionSet, SketchDelta, SketchSet};
use imp_sql::{Expr, LogicalPlan};
use imp_storage::FxHashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Outcome of one maintenance run.
#[derive(Debug, Clone)]
pub struct MaintReport {
    /// The sketch delta applied (`ΔP`).
    pub sketch_delta: SketchDelta,
    /// Cost counters.
    pub metrics: MaintMetrics,
    /// Whether bounded state forced a full recapture.
    pub recaptured: bool,
    /// Wall-clock duration of the run.
    pub duration: Duration,
    /// Operator-state heap footprint after the run (Fig. 15/17).
    pub state_bytes: usize,
}

/// Per-query maintenance state: sketch + operator states + version.
#[derive(Debug)]
pub struct SketchMaintainer {
    plan: LogicalPlan,
    pset: Arc<PartitionSet>,
    root: IncNode,
    merge: MergeOp,
    sketch: SketchSet,
    last_version: u64,
    tables: Vec<String>,
    pushdown: Option<Vec<(String, Expr)>>,
    op_config: OpConfig,
}

impl SketchMaintainer {
    /// Capture a sketch for `plan` and bootstrap operator state by feeding
    /// the full current database through the incremental pipeline as
    /// insertions from the empty state. Returns the maintainer plus the
    /// query result (capture answers the query too, Fig. 2).
    pub fn capture(
        plan: &LogicalPlan,
        db: &Database,
        pset: Arc<PartitionSet>,
        op_config: OpConfig,
        selection_pushdown: bool,
    ) -> Result<(SketchMaintainer, Bag)> {
        let root = IncNode::build(plan, &op_config)?;
        let tables = plan.tables();
        let pushdown = selection_pushdown.then(|| pushable_predicates(plan));
        let mut m = SketchMaintainer {
            plan: plan.clone(),
            merge: MergeOp::new(pset.total_fragments()),
            sketch: SketchSet::empty(Arc::clone(&pset)),
            pset,
            root,
            last_version: 0,
            tables,
            pushdown,
            op_config,
        };
        let result = m.bootstrap(db)?;
        Ok((m, result))
    }

    /// Rebuild state + sketch from the full current database.
    fn bootstrap(&mut self, db: &Database) -> Result<Bag> {
        self.root.reset();
        self.merge.reset();
        self.sketch = SketchSet::empty(Arc::clone(&self.pset));

        let mut deltas: FxHashMap<String, AnnotDelta> = FxHashMap::default();
        for table in &self.tables {
            let t = db.table(table)?;
            let mut delta: AnnotDelta = Vec::with_capacity(t.row_count());
            let total = self.pset.total_fragments();
            let part = self.pset.for_table(table);
            t.scan(
                None,
                |row| {
                    let annot = match &part {
                        Some((_, offset, p)) => imp_storage::BitVec::singleton(
                            total,
                            offset + p.fragment_of(&row[p.column]),
                        ),
                        None => imp_storage::BitVec::new(total),
                    };
                    delta.push(AnnotatedDeltaRow {
                        row,
                        annot,
                        mult: 1,
                    });
                },
                |_| {},
            );
            deltas.insert(table.clone(), self.apply_pushdown(table, delta, None));
        }
        let mut metrics = MaintMetrics::default();
        let mut ctx = MaintCtx {
            db,
            pset: &self.pset,
            deltas: &deltas,
            metrics: &mut metrics,
            needs_recapture: false,
        };
        let out = self.root.process(&mut ctx)?;
        let delta = self.merge.process(&out)?;
        self.sketch.apply_delta(&delta);
        self.last_version = db.version();
        // Bootstrap output from the empty state is the full query result.
        Ok(out
            .into_iter()
            .filter(|d| d.mult > 0)
            .map(|d| (d.row, d.mult))
            .collect())
    }

    /// Pre-filter a table's delta with push-down predicates (§7.2).
    fn apply_pushdown(
        &self,
        table: &str,
        delta: AnnotDelta,
        metrics: Option<&mut MaintMetrics>,
    ) -> AnnotDelta {
        let Some(preds) = &self.pushdown else {
            return delta;
        };
        let preds: Vec<&Expr> = preds
            .iter()
            .filter(|(t, _)| t == table)
            .map(|(_, p)| p)
            .collect();
        if preds.is_empty() {
            return delta;
        }
        let before = delta.len();
        let kept: AnnotDelta = delta
            .into_iter()
            .filter(|d| {
                preds
                    .iter()
                    .all(|p| p.eval_predicate(&d.row).unwrap_or(true))
            })
            .collect();
        if let Some(m) = metrics {
            m.delta_rows_pruned += (before - kept.len()) as u64;
        }
        kept
    }

    /// Is the sketch stale w.r.t. the current database?
    pub fn is_stale(&self, db: &Database) -> bool {
        self.tables.iter().any(|t| {
            db.delta_since(t, self.last_version)
                .map(|d| !d.is_empty())
                .unwrap_or(false)
        })
    }

    /// Incrementally maintain the sketch to the current database version.
    pub fn maintain(&mut self, db: &Database) -> Result<MaintReport> {
        let start = Instant::now();
        let mut metrics = MaintMetrics::default();

        // Fetch + annotate + (optionally) pre-filter the deltas.
        let mut deltas: FxHashMap<String, AnnotDelta> = FxHashMap::default();
        let mut any = false;
        for table in &self.tables {
            let records = db.delta_since(table, self.last_version)?;
            metrics.delta_rows_fetched += records.len() as u64;
            let annotated = annotate_delta(&self.pset, table, records);
            let filtered = self.apply_pushdown(table, annotated, Some(&mut metrics));
            let normalized = crate::delta::normalize_delta(filtered);
            any |= !normalized.is_empty();
            deltas.insert(table.clone(), normalized);
        }
        if !any {
            self.last_version = db.version();
            return Ok(MaintReport {
                sketch_delta: SketchDelta::default(),
                metrics,
                recaptured: false,
                duration: start.elapsed(),
                state_bytes: self.state_heap_size(),
            });
        }

        let mut ctx = MaintCtx {
            db,
            pset: &self.pset,
            deltas: &deltas,
            metrics: &mut metrics,
            needs_recapture: false,
        };
        let out = self.root.process(&mut ctx)?;
        let recapture = ctx.needs_recapture;

        if recapture {
            // Bounded state exhausted: fall back to full maintenance
            // (§7.2 / §8.4.3), reporting it so callers can account for it.
            let before = self.sketch.clone();
            self.bootstrap(db)?;
            let sketch_delta = diff_sketches(&before, &self.sketch);
            return Ok(MaintReport {
                sketch_delta,
                metrics,
                recaptured: true,
                duration: start.elapsed(),
                state_bytes: self.state_heap_size(),
            });
        }

        let sketch_delta = self.merge.process(&out)?;
        self.sketch.apply_delta(&sketch_delta);
        self.last_version = db.version();
        Ok(MaintReport {
            sketch_delta,
            metrics,
            recaptured: false,
            duration: start.elapsed(),
            state_bytes: self.state_heap_size(),
        })
    }

    /// Full maintenance: recapture from scratch regardless of staleness
    /// (the FM baseline of §8).
    pub fn full_maintain(&mut self, db: &Database) -> Result<MaintReport> {
        let start = Instant::now();
        let before = self.sketch.clone();
        self.bootstrap(db)?;
        Ok(MaintReport {
            sketch_delta: diff_sketches(&before, &self.sketch),
            metrics: MaintMetrics::default(),
            recaptured: true,
            duration: start.elapsed(),
            state_bytes: self.state_heap_size(),
        })
    }

    /// The maintained sketch (valid as of [`Self::version`]).
    pub fn sketch(&self) -> &SketchSet {
        &self.sketch
    }

    /// Database version the sketch is valid for.
    pub fn version(&self) -> u64 {
        self.last_version
    }

    /// The maintained query plan.
    pub fn plan(&self) -> &LogicalPlan {
        &self.plan
    }

    /// The partitions `Φ`.
    pub fn partitions(&self) -> &Arc<PartitionSet> {
        &self.pset
    }

    /// Base tables whose updates invalidate this sketch.
    pub fn tables(&self) -> &[String] {
        &self.tables
    }

    /// Operator tuning configuration.
    pub fn op_config(&self) -> OpConfig {
        self.op_config
    }

    /// Entries and bytes of the top-k operator state (Fig. 13e/f).
    pub fn topk_state(&self) -> Option<(usize, usize)> {
        self.root.topk_state()
    }

    /// Drop the in-memory operator state (after persisting it via
    /// [`crate::state_codec::save_state`]); the sketch and version stay
    /// available for use-rewrites. Restore with
    /// [`crate::state_codec::load_state`] before the next maintenance.
    pub fn drop_state(&mut self) {
        self.root.reset();
        self.merge.reset();
    }

    /// Heap footprint of all operator state + merge counters + sketch.
    pub fn state_heap_size(&self) -> usize {
        self.root.heap_size() + self.merge.heap_size() + self.sketch.heap_size()
    }

    /// Internal accessors for state persistence (see [`crate::state_codec`]).
    pub(crate) fn parts_mut(&mut self) -> (&mut IncNode, &mut MergeOp, &mut SketchSet, &mut u64) {
        (
            &mut self.root,
            &mut self.merge,
            &mut self.sketch,
            &mut self.last_version,
        )
    }

    /// Internal accessors for state persistence.
    pub(crate) fn parts(&self) -> (&IncNode, &MergeOp, &SketchSet, u64) {
        (&self.root, &self.merge, &self.sketch, self.last_version)
    }
}

/// Compute the delta between two sketch versions (`ΔP` with
/// `P₂ = P₁ ∪• ΔP`).
pub fn diff_sketches(before: &SketchSet, after: &SketchSet) -> SketchDelta {
    let mut delta = SketchDelta::default();
    let n = before.bits().len();
    for f in 0..n {
        match (before.contains(f), after.contains(f)) {
            (false, true) => delta.added.push(f),
            (true, false) => delta.removed.push(f),
            _ => {}
        }
    }
    delta
}
