//! Delta-maintained hash indexes over the join sides (`Q ⋈ Δ` caching).
//!
//! The paper outsources the `ΔQ₁ ⋈ Q₂ᴺᴱᵂ` terms of join maintenance to the
//! backend database (§1, §7): evaluating the non-delta side is a round
//! trip, paid on *every* batch. But the operator already receives exactly
//! the delta that separates the side's old state from its new one —
//! `Q₂ᴺᴱᵂ = Q₂ᴼᴸᴰ + ΔQ₂` — so the side can be materialised once and then
//! maintained in place, the classic IVM trick (cf. *Incremental
//! Maintenance for Leapfrog Triejoin*, Veldhuizen 2013). A
//! [`JoinSideIndex`] is that materialisation: a hash index
//! `join key → [(row, annotation, multiplicity)]` built from one backend
//! round trip on first use and absorbed deltas thereafter, turning
//! steady-state join maintenance from O(|side|) per batch into O(|Δ|)
//! amortized with zero round trips.
//!
//! Annotations are stored as `Arc<BitVec>` *content* handles from
//! [`AnnotPool::share`], never as [`imp_storage::AnnotId`]s: the index is
//! persistent
//! operator state, and pool ids are only live within one maintenance run
//! (the pool may be flushed between runs — see the `imp_core::delta`
//! invariants). Probing re-enters the pool via
//! [`AnnotPool::intern_arc`], an O(1) probe for already-known contents.
//!
//! The index is memory-bounded by `OpConfig::join_index_budget` (entries
//! per side); the join operator falls back to per-batch re-evaluation
//! when a side outgrows the budget, mirroring the bounded MIN/MAX state.

use crate::delta::DeltaBatch;
use imp_storage::{codec, AnnotPool, BitVec, FxHashMap, Row, Value};
use std::sync::Arc;

/// One annotated tuple of a materialised join side.
#[derive(Debug, Clone)]
pub struct IndexEntry {
    /// The side's tuple (`Arc`-shared; clone is O(1)).
    pub row: Row,
    /// Annotation content handle (pool-independent).
    pub annot: Arc<BitVec>,
    /// Bag multiplicity of `(row, annot)` in the side's result.
    pub mult: i64,
}

/// A persistent, delta-maintained hash index over one join side.
#[derive(Debug, Clone, Default)]
pub struct JoinSideIndex {
    /// Join-key values → entries, merged by `(row, annotation content)`.
    map: FxHashMap<Vec<Value>, Vec<IndexEntry>>,
    entries: usize,
    heap_bytes: usize,
}

/// Join-key values of a row; `None` when any key attribute is NULL (such a
/// row joins nothing). An empty key set (cross product) maps every row to
/// the same bucket.
pub(crate) fn key_of(row: &Row, keys: &[usize]) -> Option<Vec<Value>> {
    let mut k = Vec::with_capacity(keys.len());
    for &i in keys {
        let v = row[i].clone();
        if v.is_null() {
            return None;
        }
        k.push(v);
    }
    Some(k)
}

pub(crate) fn key_heap(key: &[Value]) -> usize {
    key.iter().map(Value::heap_size).sum::<usize>() + std::mem::size_of_val(key)
}

impl JoinSideIndex {
    /// Build the index from a full evaluation of the side (one backend
    /// round trip, already at the state the index should represent).
    pub fn build(side: &DeltaBatch, keys: &[usize], pool: &AnnotPool) -> JoinSideIndex {
        let mut idx = JoinSideIndex::default();
        idx.apply(side, keys, pool);
        idx
    }

    /// Absorb one delta of the side: `Q₂ᴺᴱᵂ = Q₂ᴼᴸᴰ + ΔQ₂`. Entries merge
    /// by `(row, annotation content)`; multiplicities that cancel to zero
    /// are removed.
    pub fn apply(&mut self, delta: &DeltaBatch, keys: &[usize], pool: &AnnotPool) {
        for d in delta {
            let Some(key) = key_of(&d.row, keys) else {
                continue;
            };
            let annot = pool.share(d.annot);
            match self.map.get_mut(&key) {
                Some(bucket) => {
                    let pos = bucket
                        .iter()
                        .position(|e| annot_eq(&e.annot, &annot) && e.row == d.row);
                    match pos {
                        Some(i) => {
                            bucket[i].mult += d.mult;
                            if bucket[i].mult == 0 {
                                self.heap_bytes -= entry_heap(&bucket[i]);
                                self.entries -= 1;
                                bucket.swap_remove(i);
                                if bucket.is_empty() {
                                    self.heap_bytes -= key_heap(&key);
                                    self.map.remove(&key);
                                }
                            }
                        }
                        None => {
                            let e = IndexEntry {
                                row: d.row.clone(),
                                annot,
                                mult: d.mult,
                            };
                            self.heap_bytes += entry_heap(&e);
                            self.entries += 1;
                            bucket.push(e);
                        }
                    }
                }
                None => {
                    let e = IndexEntry {
                        row: d.row.clone(),
                        annot,
                        mult: d.mult,
                    };
                    self.heap_bytes += key_heap(&key) + entry_heap(&e);
                    self.entries += 1;
                    self.map.insert(key, vec![e]);
                }
            }
        }
    }

    /// Entries matching a join key.
    pub fn get(&self, key: &[Value]) -> Option<&[IndexEntry]> {
        self.map.get(key).map(Vec::as_slice)
    }

    /// Iterate the distinct join keys (bloom filters are rebuilt from
    /// these without a backend round trip).
    pub fn keys(&self) -> impl Iterator<Item = &Vec<Value>> {
        self.map.keys()
    }

    /// Visit every annotation handle held by the index (the
    /// shared-ownership-aware accounting walk).
    pub fn for_each_annot(&self, f: &mut dyn FnMut(&Arc<BitVec>)) {
        for bucket in self.map.values() {
            for e in bucket {
                f(&e.annot);
            }
        }
    }

    /// Number of stored annotated tuples (the budgeted quantity).
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True iff the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Heap footprint of the index (Fig. 17), tracked incrementally so
    /// accounting stays O(|Δ|) per batch. Annotation *contents* are
    /// counted like the top-k state counts them: the `Arc<BitVec>`
    /// handles come from the maintainer's pool, whose own `heap_size`
    /// accounts for the bitvectors — only per-entry handle overhead is
    /// ours. (Known accounting gap shared with the top-k state: after a
    /// between-runs pool flush, contents kept alive only by these
    /// handles are counted by neither side until re-interned.)
    pub fn heap_size(&self) -> usize {
        self.heap_bytes
            + self.map.capacity() * (std::mem::size_of::<Vec<Value>>() + 8)
            + std::mem::size_of::<JoinSideIndex>()
    }

    /// Serialize the index (annotations by content, so the encoding is
    /// independent of pool id assignment).
    pub fn encode_state(&self, buf: &mut bytes::BytesMut) {
        codec::encode_u64(buf, self.map.len() as u64);
        for (key, bucket) in &self.map {
            codec::encode_row(buf, &Row::new(key.clone()));
            codec::encode_u64(buf, bucket.len() as u64);
            for e in bucket {
                codec::encode_row(buf, &e.row);
                codec::encode_bitvec(buf, &e.annot);
                codec::encode_i64(buf, e.mult);
            }
        }
    }

    /// Restore an index written by [`JoinSideIndex::encode_state`],
    /// re-interning every annotation into `pool` so restored state shares
    /// allocations (and ids) with the live pipeline.
    pub fn decode_state(
        buf: &mut bytes::Bytes,
        pool: &mut AnnotPool,
    ) -> crate::Result<JoinSideIndex> {
        let mut idx = JoinSideIndex::default();
        let n_keys = codec::decode_u64(buf)?;
        for _ in 0..n_keys {
            let key = codec::decode_row(buf)?.values().to_vec();
            let len = codec::decode_u64(buf)?;
            let mut bucket = Vec::with_capacity(len as usize);
            idx.heap_bytes += key_heap(&key);
            for _ in 0..len {
                let row = codec::decode_row(buf)?;
                let id = pool.intern(codec::decode_bitvec(buf)?);
                let e = IndexEntry {
                    row,
                    annot: pool.share(id),
                    mult: codec::decode_i64(buf)?,
                };
                idx.heap_bytes += entry_heap(&e);
                idx.entries += 1;
                bucket.push(e);
            }
            idx.map.insert(key, bucket);
        }
        Ok(idx)
    }
}

pub(crate) fn entry_heap(e: &IndexEntry) -> usize {
    e.row.heap_size() + std::mem::size_of::<IndexEntry>()
}

/// Content equality with an `Arc` pointer fast path (entries built from
/// the same pool share allocations).
pub(crate) fn annot_eq(a: &Arc<BitVec>, b: &Arc<BitVec>) -> bool {
    Arc::ptr_eq(a, b) || a == b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::DeltaEntry;
    use imp_storage::row;

    fn batch(pool: &mut AnnotPool, items: &[(Row, usize, i64)]) -> DeltaBatch {
        items
            .iter()
            .map(|(r, bit, m)| DeltaEntry {
                row: r.clone(),
                annot: pool.singleton(*bit),
                mult: *m,
            })
            .collect()
    }

    #[test]
    fn build_groups_by_key_and_merges() {
        let mut p = AnnotPool::new(8);
        let side = batch(
            &mut p,
            &[
                (row![1, 10], 0, 1),
                (row![1, 11], 0, 1),
                (row![2, 20], 1, 3),
                (row![1, 10], 0, 1), // duplicate of the first entry
            ],
        );
        let idx = JoinSideIndex::build(&side, &[0], &p);
        assert_eq!(idx.len(), 3);
        let bucket = idx.get(&[Value::Int(1)]).unwrap();
        assert_eq!(bucket.len(), 2);
        let dup = bucket.iter().find(|e| e.row == row![1, 10]).unwrap();
        assert_eq!(dup.mult, 2);
        assert!(idx.get(&[Value::Int(3)]).is_none());
    }

    #[test]
    fn apply_deletes_cancel_entries() {
        let mut p = AnnotPool::new(8);
        let side = batch(&mut p, &[(row![1, 10], 0, 1), (row![2, 20], 1, 1)]);
        let mut idx = JoinSideIndex::build(&side, &[0], &p);
        let before = idx.heap_size();
        let delta = batch(&mut p, &[(row![1, 10], 0, -1)]);
        idx.apply(&delta, &[0], &p);
        assert_eq!(idx.len(), 1);
        assert!(idx.get(&[Value::Int(1)]).is_none());
        assert!(idx.heap_size() < before);
        // Re-insert brings it back.
        let delta = batch(&mut p, &[(row![1, 10], 0, 1)]);
        idx.apply(&delta, &[0], &p);
        assert_eq!(idx.get(&[Value::Int(1)]).unwrap().len(), 1);
    }

    #[test]
    fn null_keys_are_skipped() {
        let mut p = AnnotPool::new(8);
        let side: DeltaBatch = vec![DeltaEntry {
            row: Row::new(vec![Value::Null, Value::Int(1)]),
            annot: p.singleton(0),
            mult: 1,
        }]
        .into();
        let idx = JoinSideIndex::build(&side, &[0], &p);
        assert!(idx.is_empty());
    }

    #[test]
    fn codec_roundtrip_reinterns() {
        let mut p = AnnotPool::new(8);
        let side = batch(
            &mut p,
            &[
                (row![1, 10], 0, 1),
                (row![1, 11], 2, 2),
                (row![5, 50], 1, 1),
            ],
        );
        let idx = JoinSideIndex::build(&side, &[0], &p);
        let mut buf = bytes::BytesMut::new();
        idx.encode_state(&mut buf);
        // Restore into a *fresh* pool (mirrors post-eviction restore).
        let mut p2 = AnnotPool::new(8);
        let mut bytes = buf.freeze();
        let restored = JoinSideIndex::decode_state(&mut bytes, &mut p2).unwrap();
        assert!(bytes.is_empty());
        assert_eq!(restored.len(), idx.len());
        let a = idx.get(&[Value::Int(1)]).unwrap();
        let b = restored.get(&[Value::Int(1)]).unwrap();
        assert_eq!(a.len(), b.len());
        for e in a {
            assert!(b
                .iter()
                .any(|r| r.row == e.row && *r.annot == *e.annot && r.mult == e.mult));
        }
    }
}
