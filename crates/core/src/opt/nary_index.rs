//! Per-input hash indexes for the n-ary join operator.
//!
//! A [`NarySideIndex`] materialises one *input* of an n-ary equi-join —
//! the same delta-maintained `(row, annotation, multiplicity)` bag as
//! [`super::JoinSideIndex`], but keyed for multi-way probing: the primary
//! key is the input's full join-key participation (one value per
//! equivalence class the input joins on), and per-class secondary maps
//! support *partially bound* probes. A chain join `A ⋈ B ⋈ C` probing
//! `C` from a `ΔA` seed knows only `B`-adjacent classes, so the probe
//! binds a subset of `C`'s classes; the secondary map on that class
//! narrows the candidates without scanning the whole input.
//!
//! Buckets live in an arena indexed by both maps. Deletion is lazy in
//! the secondaries: a bucket whose entries cancel away is emptied and
//! unlinked from the primary, while secondary lists keep the stale slot
//! id (probes skip empty buckets) until a compaction pass rebuilds the
//! arena — amortized O(|Δ|).
//!
//! Annotations are `Arc<BitVec>` content handles (pool-independent),
//! exactly like [`super::JoinSideIndex`] — see that module's docs for
//! the persistence rules. The codec writes the primary contents only;
//! secondaries are derived data, rebuilt on decode.

use crate::delta::DeltaBatch;
use crate::opt::side_index::{annot_eq, entry_heap, key_heap, IndexEntry};
use imp_storage::{codec, AnnotPool, BitVec, FxHashMap, Row, Value};
use std::sync::Arc;

/// One input's class participation: `(class id, columns of this input in
/// that class)`, ascending by class id. An input whose row carries the
/// same class in several columns (self-equality) only indexes rows where
/// those columns agree — others can never join.
pub type ClassSpec = Vec<(usize, Vec<usize>)>;

/// Rebuild the arena once more than half of it is dead and the dead run
/// is big enough to be worth the rebuild.
const COMPACT_MIN_DEAD: usize = 16;

#[derive(Debug, Clone, Default)]
struct Bucket {
    key: Vec<Value>,
    entries: Vec<IndexEntry>,
}

/// A persistent, delta-maintained index over one n-ary join input.
#[derive(Debug, Clone, Default)]
pub struct NarySideIndex {
    spec: ClassSpec,
    buckets: Vec<Bucket>,
    /// Full participation key (one value per spec position) → arena slot.
    primary: FxHashMap<Vec<Value>, u32>,
    /// Per spec position: class value → arena slots (may hold stale ids
    /// of emptied buckets — probes skip them, compaction drops them).
    secondary: Vec<FxHashMap<Value, Vec<u32>>>,
    entries: usize,
    heap_bytes: usize,
    dead: usize,
}

/// The input's participation key for a row: one value per spec position,
/// `None` when any key column is NULL or the input's own columns of a
/// class disagree (such a row joins nothing).
pub fn participation_key(row: &Row, spec: &ClassSpec) -> Option<Vec<Value>> {
    let mut key = Vec::with_capacity(spec.len());
    for (_, cols) in spec {
        let v = row[cols[0]].clone();
        if v.is_null() {
            return None;
        }
        if cols[1..].iter().any(|&c| row[c] != v) {
            return None;
        }
        key.push(v);
    }
    Some(key)
}

impl NarySideIndex {
    /// Empty index for a participation spec.
    pub fn new(spec: ClassSpec) -> NarySideIndex {
        let secondary = (0..spec.len()).map(|_| FxHashMap::default()).collect();
        NarySideIndex {
            spec,
            secondary,
            ..NarySideIndex::default()
        }
    }

    /// Build from a full evaluation of the input (one backend round trip,
    /// already at the state the index should represent).
    pub fn build(spec: ClassSpec, side: &DeltaBatch, pool: &AnnotPool) -> NarySideIndex {
        let mut idx = NarySideIndex::new(spec);
        idx.apply(side, pool);
        idx
    }

    /// The participation spec this index was built for.
    pub fn spec(&self) -> &ClassSpec {
        &self.spec
    }

    /// Absorb one delta of the input (`Qᴺᴱᵂ = Qᴼᴸᴰ + ΔQ`); entries merge
    /// by `(row, annotation content)` and cancel at zero multiplicity.
    pub fn apply(&mut self, delta: &DeltaBatch, pool: &AnnotPool) {
        self.apply_signed(delta, pool, 1);
    }

    /// Absorb a delta with *negated* multiplicities: rewinds an index
    /// evaluated at the new state back to the old one (the n-ary rule
    /// probes inputs right of the current term at their old state).
    pub fn apply_negated(&mut self, delta: &DeltaBatch, pool: &AnnotPool) {
        self.apply_signed(delta, pool, -1);
    }

    fn apply_signed(&mut self, delta: &DeltaBatch, pool: &AnnotPool, sign: i64) {
        for d in delta {
            let Some(key) = participation_key(&d.row, &self.spec) else {
                continue;
            };
            let mult = d.mult * sign;
            let annot = pool.share(d.annot);
            match self.primary.get(&key) {
                Some(&slot) => {
                    let bucket = &mut self.buckets[slot as usize];
                    let pos = bucket
                        .entries
                        .iter()
                        .position(|e| annot_eq(&e.annot, &annot) && e.row == d.row);
                    match pos {
                        Some(i) => {
                            bucket.entries[i].mult += mult;
                            if bucket.entries[i].mult == 0 {
                                self.heap_bytes -= entry_heap(&bucket.entries[i]);
                                self.entries -= 1;
                                bucket.entries.swap_remove(i);
                                if bucket.entries.is_empty() {
                                    self.heap_bytes -= key_heap(&key);
                                    // Lazy delete: unlink from the primary,
                                    // leave stale slot ids in the secondaries.
                                    bucket.key = Vec::new();
                                    self.primary.remove(&key);
                                    self.dead += 1;
                                }
                            }
                        }
                        None => {
                            let e = IndexEntry {
                                row: d.row.clone(),
                                annot,
                                mult,
                            };
                            self.heap_bytes += entry_heap(&e);
                            self.entries += 1;
                            bucket.entries.push(e);
                        }
                    }
                }
                None => {
                    let e = IndexEntry {
                        row: d.row.clone(),
                        annot,
                        mult,
                    };
                    self.heap_bytes += key_heap(&key) + entry_heap(&e);
                    self.entries += 1;
                    let slot = self.buckets.len() as u32;
                    for (pos, v) in key.iter().enumerate() {
                        self.secondary[pos].entry(v.clone()).or_default().push(slot);
                    }
                    self.buckets.push(Bucket {
                        key: key.clone(),
                        entries: vec![e],
                    });
                    self.primary.insert(key, slot);
                }
            }
        }
        if self.dead > COMPACT_MIN_DEAD && self.dead * 2 > self.buckets.len() {
            self.compact();
        }
    }

    /// Rebuild the arena and both map layers from the live buckets.
    fn compact(&mut self) {
        let buckets: Vec<Bucket> = std::mem::take(&mut self.buckets)
            .into_iter()
            .filter(|b| !b.entries.is_empty())
            .collect();
        self.primary.clear();
        for s in &mut self.secondary {
            s.clear();
        }
        for (slot, b) in buckets.iter().enumerate() {
            self.primary.insert(b.key.clone(), slot as u32);
            for (pos, v) in b.key.iter().enumerate() {
                self.secondary[pos]
                    .entry(v.clone())
                    .or_default()
                    .push(slot as u32);
            }
        }
        self.buckets = buckets;
        self.dead = 0;
    }

    /// Visit every bucket matching the (possibly partial) bound values —
    /// one `Option<Value>` per spec position. Fully bound probes hit the
    /// primary; partially bound probes walk the smallest secondary list
    /// among the bound positions; a probe binding nothing (disconnected
    /// cross-product component) scans every live bucket.
    pub fn for_each_match(
        &self,
        bound: &[Option<Value>],
        f: &mut dyn FnMut(&[Value], &[IndexEntry]),
    ) {
        debug_assert_eq!(bound.len(), self.spec.len());
        if bound.iter().all(Option::is_some) {
            let key: Vec<Value> = bound.iter().map(|v| v.clone().unwrap()).collect();
            if let Some(&slot) = self.primary.get(&key) {
                let b = &self.buckets[slot as usize];
                if !b.entries.is_empty() {
                    f(&b.key, &b.entries);
                }
            }
            return;
        }
        // Narrow through the bound position with the fewest candidates.
        let mut best: Option<&[u32]> = None;
        let mut any_bound = false;
        for (pos, v) in bound.iter().enumerate() {
            let Some(v) = v else {
                continue;
            };
            any_bound = true;
            let slots = self.secondary[pos].get(v).map(Vec::as_slice).unwrap_or(&[]);
            if best.is_none_or(|b| slots.len() < b.len()) {
                best = Some(slots);
            }
        }
        if any_bound {
            for &slot in best.unwrap_or(&[]) {
                let b = &self.buckets[slot as usize];
                if b.entries.is_empty() {
                    continue; // stale secondary link to an emptied bucket
                }
                let matches = bound
                    .iter()
                    .zip(&b.key)
                    .all(|(want, have)| want.as_ref().is_none_or(|w| w == have));
                if matches {
                    f(&b.key, &b.entries);
                }
            }
            return;
        }
        for b in &self.buckets {
            if !b.entries.is_empty() {
                f(&b.key, &b.entries);
            }
        }
    }

    /// Visit every annotation handle (shared-ownership-aware accounting).
    pub fn for_each_annot(&self, f: &mut dyn FnMut(&Arc<BitVec>)) {
        for b in &self.buckets {
            for e in &b.entries {
                f(&e.annot);
            }
        }
    }

    /// Number of stored annotated tuples (the budgeted quantity).
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True iff the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Heap footprint, tracked incrementally (see
    /// [`super::JoinSideIndex::heap_size`] for the annotation-content
    /// accounting rules, which are identical here).
    pub fn heap_size(&self) -> usize {
        let secondary: usize = self
            .secondary
            .iter()
            .map(|s| s.capacity() * (std::mem::size_of::<Value>() + 8) + s.len() * 4)
            .sum();
        self.heap_bytes
            + self.primary.capacity() * (std::mem::size_of::<Vec<Value>>() + 8)
            + self.buckets.capacity() * std::mem::size_of::<Bucket>()
            + secondary
            + std::mem::size_of::<NarySideIndex>()
    }

    /// Serialize the primary contents (annotations by content; the
    /// secondaries are derived and rebuilt on decode).
    pub fn encode_state(&self, buf: &mut bytes::BytesMut) {
        codec::encode_u64(buf, self.primary.len() as u64);
        for (key, &slot) in &self.primary {
            let bucket = &self.buckets[slot as usize];
            codec::encode_row(buf, &Row::new(key.clone()));
            codec::encode_u64(buf, bucket.entries.len() as u64);
            for e in &bucket.entries {
                codec::encode_row(buf, &e.row);
                codec::encode_bitvec(buf, &e.annot);
                codec::encode_i64(buf, e.mult);
            }
        }
    }

    /// Restore an index written by [`NarySideIndex::encode_state`]. The
    /// spec is operator metadata (derived from the plan), so it travels
    /// beside the codec rather than inside it.
    pub fn decode_state(
        buf: &mut bytes::Bytes,
        pool: &mut AnnotPool,
        spec: ClassSpec,
    ) -> crate::Result<NarySideIndex> {
        let mut idx = NarySideIndex::new(spec);
        let n_keys = codec::decode_u64(buf)?;
        for _ in 0..n_keys {
            let key = codec::decode_row(buf)?.values().to_vec();
            let len = codec::decode_u64(buf)?;
            idx.heap_bytes += key_heap(&key);
            let mut entries = Vec::with_capacity(len as usize);
            for _ in 0..len {
                let row = codec::decode_row(buf)?;
                let id = pool.intern(codec::decode_bitvec(buf)?);
                let e = IndexEntry {
                    row,
                    annot: pool.share(id),
                    mult: codec::decode_i64(buf)?,
                };
                idx.heap_bytes += entry_heap(&e);
                idx.entries += 1;
                entries.push(e);
            }
            let slot = idx.buckets.len() as u32;
            for (pos, v) in key.iter().enumerate() {
                idx.secondary[pos].entry(v.clone()).or_default().push(slot);
            }
            idx.buckets.push(Bucket {
                key: key.clone(),
                entries,
            });
            idx.primary.insert(key, slot);
        }
        Ok(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::DeltaEntry;
    use imp_storage::row;

    fn batch(pool: &mut AnnotPool, items: &[(Row, usize, i64)]) -> DeltaBatch {
        items
            .iter()
            .map(|(r, bit, m)| DeltaEntry {
                row: r.clone(),
                annot: pool.singleton(*bit),
                mult: *m,
            })
            .collect()
    }

    /// Spec: class 0 on column 0, class 2 on column 1.
    fn spec() -> ClassSpec {
        vec![(0, vec![0]), (2, vec![1])]
    }

    #[test]
    fn partial_probes_use_secondaries() {
        let mut p = AnnotPool::new(8);
        let side = batch(
            &mut p,
            &[
                (row![1, 10, 7], 0, 1),
                (row![1, 11, 8], 1, 1),
                (row![2, 10, 9], 2, 1),
            ],
        );
        let idx = NarySideIndex::build(spec(), &side, &p);
        assert_eq!(idx.len(), 3);
        // Bind only class 0 = 1: two buckets.
        let mut seen = Vec::new();
        idx.for_each_match(&[Some(Value::Int(1)), None], &mut |key, entries| {
            seen.push((key.to_vec(), entries.len()));
        });
        assert_eq!(seen.len(), 2);
        // Bind only class 2 = 10: two buckets across class-0 values.
        let mut n = 0;
        idx.for_each_match(&[None, Some(Value::Int(10))], &mut |_, e| n += e.len());
        assert_eq!(n, 2);
        // Fully bound: exactly one bucket.
        let mut n = 0;
        idx.for_each_match(&[Some(Value::Int(2)), Some(Value::Int(10))], &mut |_, e| {
            n += e.len()
        });
        assert_eq!(n, 1);
        // Unbound: full scan.
        let mut n = 0;
        idx.for_each_match(&[None, None], &mut |_, e| n += e.len());
        assert_eq!(n, 3);
    }

    #[test]
    fn cancellation_tombstones_then_reinserts() {
        let mut p = AnnotPool::new(8);
        let side = batch(&mut p, &[(row![1, 10, 7], 0, 1), (row![2, 20, 8], 1, 1)]);
        let mut idx = NarySideIndex::build(spec(), &side, &p);
        idx.apply_negated(&batch(&mut p, &[(row![1, 10, 7], 0, 1)]), &p);
        assert_eq!(idx.len(), 1);
        let mut n = 0;
        idx.for_each_match(&[Some(Value::Int(1)), None], &mut |_, e| n += e.len());
        assert_eq!(n, 0, "emptied bucket must be skipped via stale link");
        // Re-insert lands in a fresh slot and is visible again.
        idx.apply(&batch(&mut p, &[(row![1, 10, 7], 0, 1)]), &p);
        let mut n = 0;
        idx.for_each_match(&[Some(Value::Int(1)), None], &mut |_, e| n += e.len());
        assert_eq!(n, 1);
    }

    #[test]
    fn self_equality_and_nulls_excluded() {
        let mut p = AnnotPool::new(8);
        // Spec demanding columns 0 and 1 agree on class 0.
        let spec: ClassSpec = vec![(0, vec![0, 1])];
        let ok = row![5, 5, 1];
        let bad = row![5, 6, 1];
        let null = Row::new(vec![Value::Null, Value::Null, Value::Int(1)]);
        let side: DeltaBatch = vec![
            DeltaEntry {
                row: ok.clone(),
                annot: p.singleton(0),
                mult: 1,
            },
            DeltaEntry {
                row: bad,
                annot: p.singleton(1),
                mult: 1,
            },
            DeltaEntry {
                row: null,
                annot: p.singleton(2),
                mult: 1,
            },
        ]
        .into();
        let idx = NarySideIndex::build(spec, &side, &p);
        assert_eq!(idx.len(), 1);
        let mut n = 0;
        idx.for_each_match(&[Some(Value::Int(5))], &mut |_, e| n += e.len());
        assert_eq!(n, 1);
    }

    #[test]
    fn compaction_preserves_contents() {
        let mut p = AnnotPool::new(64);
        let mut idx = NarySideIndex::new(spec());
        for i in 0..40i64 {
            idx.apply(&batch(&mut p, &[(row![i, i * 10, 0], 0, 1)]), &p);
        }
        // Cancel most buckets to trigger compaction.
        for i in 0..30i64 {
            idx.apply(&batch(&mut p, &[(row![i, i * 10, 0], 0, -1)]), &p);
        }
        assert_eq!(idx.len(), 10);
        for i in 30..40i64 {
            let mut n = 0;
            idx.for_each_match(&[Some(Value::Int(i)), None], &mut |_, e| n += e.len());
            assert_eq!(n, 1, "row {i} must survive compaction");
        }
    }

    #[test]
    fn codec_roundtrip_rebuilds_secondaries() {
        let mut p = AnnotPool::new(8);
        let side = batch(
            &mut p,
            &[
                (row![1, 10, 7], 0, 2),
                (row![1, 11, 8], 1, 1),
                (row![2, 10, 9], 2, -1),
            ],
        );
        let idx = NarySideIndex::build(spec(), &side, &p);
        let mut buf = bytes::BytesMut::new();
        idx.encode_state(&mut buf);
        let mut p2 = AnnotPool::new(8);
        let mut bytes = buf.freeze();
        let restored = NarySideIndex::decode_state(&mut bytes, &mut p2, spec()).unwrap();
        assert!(bytes.is_empty());
        assert_eq!(restored.len(), idx.len());
        let mut n = 0;
        restored.for_each_match(&[None, Some(Value::Int(10))], &mut |_, e| n += e.len());
        assert_eq!(n, 2);
    }
}
