//! The optimizations of paper §7.2.

pub mod bloom;
pub mod pushdown;

pub use bloom::BloomFilter;
pub use pushdown::pushable_predicates;
