//! The optimizations of paper §7.2, plus the delta-maintained join-side
//! indexes that eliminate the per-batch `Q ⋈ Δ` round trips.

pub mod bloom;
pub mod nary_index;
pub mod pushdown;
pub mod side_index;

pub use bloom::BloomFilter;
pub use nary_index::NarySideIndex;
pub use pushdown::pushable_predicates;
pub use side_index::{IndexEntry, JoinSideIndex};
