//! Bloom filters for join-delta pruning (paper §7.2).
//!
//! "IMP maintains bloom filters on the join attributes for both sides of
//! equi-joins that are used to filter out rows from Δℛ (and Δ𝒮) that do
//! not have any join partners in the other table. If according to \[the\]
//! bloom filter no rows from the delta have join partners then we can
//! avoid the round trip to the database completely."
//!
//! Standard double-hashing construction (Kirsch–Mitzenmacher): `k` probe
//! positions derived from two independent 64-bit hashes. Inserts only —
//! deletions on the other table leave stale positives, which is safe
//! (a false positive only costs a wasted probe, never a lost match).

use imp_storage::{BitVec, FxHasher, Value};
use std::hash::{Hash, Hasher};

/// A fixed-size bloom filter over join-key value vectors.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: BitVec,
    k: u32,
    inserted: u64,
}

impl BloomFilter {
    /// Size the filter for `expected_items` at roughly 1% false positives
    /// (m ≈ 9.6 n, k ≈ 7).
    pub fn with_capacity(expected_items: usize) -> BloomFilter {
        let m = (expected_items.max(16) * 10).next_power_of_two();
        BloomFilter {
            bits: BitVec::new(m),
            k: 7,
            inserted: 0,
        }
    }

    fn hashes(&self, key: &[Value]) -> (u64, u64) {
        let mut h1 = FxHasher::default();
        key.hash(&mut h1);
        let a = h1.finish();
        let mut h2 = FxHasher::default();
        // Different seed stream: hash the first hash plus a constant.
        (a ^ 0x9e37_79b9_7f4a_7c15).hash(&mut h2);
        key.hash(&mut h2);
        (a, h2.finish() | 1)
    }

    /// Insert a key.
    pub fn insert(&mut self, key: &[Value]) {
        let (a, b) = self.hashes(key);
        let m = self.bits.len() as u64;
        for i in 0..self.k as u64 {
            let pos = a.wrapping_add(i.wrapping_mul(b)) % m;
            self.bits.set(pos as usize, true);
        }
        self.inserted += 1;
    }

    /// Might the key be present? (No false negatives.)
    pub fn may_contain(&self, key: &[Value]) -> bool {
        let (a, b) = self.hashes(key);
        let m = self.bits.len() as u64;
        (0..self.k as u64).all(|i| {
            let pos = a.wrapping_add(i.wrapping_mul(b)) % m;
            self.bits.get(pos as usize)
        })
    }

    /// Number of inserted keys.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Filter bits footprint ("the bloom filter's size is linear in m, but
    /// for a small constant factor", §5.3).
    pub fn heap_size(&self) -> usize {
        self.bits.heap_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: i64) -> Vec<Value> {
        vec![Value::Int(i)]
    }

    #[test]
    fn no_false_negatives() {
        let mut b = BloomFilter::with_capacity(1000);
        for i in 0..1000 {
            b.insert(&key(i));
        }
        for i in 0..1000 {
            assert!(b.may_contain(&key(i)), "false negative for {i}");
        }
    }

    #[test]
    fn false_positive_rate_reasonable() {
        let mut b = BloomFilter::with_capacity(1000);
        for i in 0..1000 {
            b.insert(&key(i));
        }
        let fp = (10_000..60_000).filter(|&i| b.may_contain(&key(i))).count();
        let rate = fp as f64 / 50_000.0;
        assert!(rate < 0.05, "false positive rate {rate} too high");
    }

    #[test]
    fn compound_keys() {
        let mut b = BloomFilter::with_capacity(64);
        b.insert(&[Value::Int(1), Value::str("x")]);
        assert!(b.may_contain(&[Value::Int(1), Value::str("x")]));
        assert!(!b.may_contain(&[Value::Int(1), Value::str("y")]));
    }

    #[test]
    fn empty_filter_rejects() {
        let b = BloomFilter::with_capacity(100);
        assert!(!b.may_contain(&key(42)));
    }
}
