//! Selection push-down into delta retrieval (paper §7.2).
//!
//! "If a query involves a selection and all operators in the subtree
//! rooted at \[the\] selection are stateless, then we can avoid fetching
//! delta tuples from the database that do not fulfill the selection's
//! condition … we can push the selection conditions into the query that
//! retrieves the delta."
//!
//! In this implementation, deltas come from the backend's per-table delta
//! logs, so "pushing into the retrieval query" means filtering the log
//! records before they are annotated and handed to the incremental
//! pipeline. The predicates eligible for push-down are exactly the filters
//! sitting on a stateless path between a table access and the first
//! stateful operator.

use imp_sql::{Expr, LogicalPlan};

/// Collect, per base table, the predicates that can be evaluated directly
/// on that table's delta rows. Returns `(table, predicate-over-base-row)`
/// pairs.
pub fn pushable_predicates(plan: &LogicalPlan) -> Vec<(String, Expr)> {
    let mut out = Vec::new();
    walk(plan, &mut out);
    out
}

fn walk(plan: &LogicalPlan, out: &mut Vec<(String, Expr)>) {
    match plan {
        // The shape `Filter(Scan)` is the push-down target: everything
        // below the filter (just the scan) is stateless, and the filter's
        // columns are base-table positions.
        LogicalPlan::Filter { input, predicate } => {
            if let LogicalPlan::Scan { table, .. } = input.as_ref() {
                out.push((table.clone(), predicate.clone()));
            } else {
                walk(input, out);
            }
        }
        LogicalPlan::Scan { .. } => {}
        LogicalPlan::Project { input, .. }
        | LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::Distinct { input }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::TopK { input, .. } => walk(input, out),
        LogicalPlan::Join { left, right, .. } | LogicalPlan::Except { left, right, .. } => {
            walk(left, out);
            walk(right, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imp_engine::Database;
    use imp_storage::{DataType, Field, Schema};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "r",
            Schema::new(vec![
                Field::new("a", DataType::Int),
                Field::new("b", DataType::Int),
            ]),
        )
        .unwrap();
        db.create_table(
            "s",
            Schema::new(vec![
                Field::new("c", DataType::Int),
                Field::new("d", DataType::Int),
            ]),
        )
        .unwrap();
        db
    }

    #[test]
    fn where_over_scan_is_pushable() {
        let db = db();
        let plan = db
            .plan_sql("SELECT a, avg(b) FROM r WHERE b < 100 GROUP BY a")
            .unwrap();
        let p = pushable_predicates(&plan);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].0, "r");
    }

    #[test]
    fn both_join_sides_collected() {
        let db = db();
        let plan = db
            .plan_sql(
                "SELECT a, sum(d) FROM (SELECT a, b FROM r WHERE a > 3) t \
                 JOIN s ON (b = c) GROUP BY a",
            )
            .unwrap();
        let p = pushable_predicates(&plan);
        // Only r has a filter directly over its scan.
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].0, "r");
    }

    #[test]
    fn no_filter_no_pushdown() {
        let db = db();
        let plan = db.plan_sql("SELECT a, avg(b) FROM r GROUP BY a").unwrap();
        assert!(pushable_predicates(&plan).is_empty());
    }
}
