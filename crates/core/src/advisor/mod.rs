//! # `imp_core::advisor` — workload-driven sketch selection and lifecycle
//! autopilot
//!
//! The maintenance pipeline keeps every captured sketch current forever —
//! a write-heavy table with a never-reused sketch burns the same memory
//! and maintenance budget as the hottest template in the store. This
//! module decides *which* sketches deserve that budget, following the
//! cost-based-selection insight (selection under a memory budget is
//! where real-world data-skipping wins come from) applied online:
//!
//! ## Flow: tracker → cost → select → autopilot
//!
//! ```text
//!   execute()/maintenance ──▶ WorkloadTracker   (uses, est. rows skipped,
//!            │                     │             maintenance cost)
//!            │                     ▼
//!            │                AdvisorParams::score   benefit − α·maint − β·heap
//!            │                     │
//!            │                     ▼
//!            │                select_keep           greedy knapsack under
//!            │                     │                ImpConfig::sketch_memory_budget
//!            ▼                     ▼
//!   tick_maintenance() ──▶ autopilot rounds:  keepers → Maintained (promote)
//!                                             losers  → Lazy → Evicted → dropped
//! ```
//!
//! * [`tracker`] — [`WorkloadTracker`]: per-sketch USE hits (capture /
//!   fresh / maintained), estimated backend rows skipped (equi-depth
//!   histogram estimate × sketch selectivity), and maintenance cost
//!   (wall-clock + delta rows, from each run's
//!   [`crate::maintain::MaintReport`]). Lifetime totals plus a decayed
//!   hot window.
//! * [`cost`] — [`AdvisorParams`]: scores each stored sketch in row
//!   equivalents as `benefit − α·maintain_cost − β·heap_size`.
//! * [`select`] — [`select::select_keep`]: greedy knapsack choosing the
//!   keep-set under the configured memory budget.
//! * [`autopilot`] — plans and applies lifecycle transitions along the
//!   ladder `Maintained → Lazy → Evicted → dropped`, promoting re-hot
//!   sketches back up (restore + maintain; a dropped template re-captures
//!   on its next query).
//!
//! The autopilot runs from [`crate::middleware::Imp::tick_maintenance`]
//! (and on demand via [`crate::middleware::Imp::advise`]); on sharded
//! stores the gather/apply steps travel as [`crate::sched`] control
//! barriers so shard workers stay the only writers of their stores.
//! Decisions change **cost, never answers**: every demoted sketch still
//! answers through the store's existing on-demand maintenance / restore /
//! re-capture paths, and a demoted-then-promoted sketch is byte-identical
//! (bits and version) to one that was maintained throughout —
//! split-invariant versioning makes promotion a pure cost event.

pub mod autopilot;
pub mod cost;
pub mod select;
pub mod tracker;

pub use autopilot::{AdviseAction, AdviseOp, ApplyOutcome, Lifecycle, PlannedRound, SketchCard};
pub use cost::AdvisorParams;
pub use tracker::{MaintCost, SketchKey, UseKind, UseStats, WorkloadTracker};

use std::sync::Arc;

/// Enforcement rounds an autopilot pass may run after the regular round
/// while the store is still over budget (round 1 forces losers to
/// [`Lifecycle::Evicted`], later rounds drop them). Two drop rounds give
/// slack for heap measured mid-escalation.
pub const MAX_ENFORCEMENT_ROUNDS: u32 = 3;

/// The advisor facade: the shared workload tracker plus the cost-model
/// parameters, owned by [`crate::middleware::Imp`].
#[derive(Debug)]
pub struct Advisor {
    tracker: Arc<WorkloadTracker>,
    params: AdvisorParams,
}

impl Advisor {
    /// Fresh advisor with the given cost-model parameters.
    pub fn new(params: AdvisorParams) -> Advisor {
        Advisor {
            tracker: Arc::new(WorkloadTracker::new()),
            params,
        }
    }

    /// The shared workload tracker (the sharded store hands clones to its
    /// shard workers).
    pub fn tracker(&self) -> &Arc<WorkloadTracker> {
        &self.tracker
    }

    /// The cost-model parameters.
    pub fn params(&self) -> &AdvisorParams {
        &self.params
    }

    /// Plan one autopilot round over gathered cards (see
    /// [`autopilot::plan_round`]).
    pub fn plan_round(&self, cards: &[SketchCard], budget: usize, escalation: u32) -> PlannedRound {
        autopilot::plan_round(cards, &self.tracker, &self.params, budget, escalation)
    }

    /// Halve the tracker's hot windows (once per autopilot pass).
    pub fn decay(&self) {
        self.tracker.decay();
    }
}

/// Outcome of one full autopilot pass ([`crate::middleware::Imp::advise`]):
/// the regular round plus any enforcement rounds it took to get the store
/// under budget.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdvisorReport {
    /// Configured budget the pass enforced.
    pub budget: usize,
    /// Store heap before the pass.
    pub heap_before: usize,
    /// Store heap after the pass (≤ `budget`).
    pub heap_after: usize,
    /// Keep-set size of the final round.
    pub kept: usize,
    /// Rounds executed (1 = the regular round sufficed).
    pub rounds: u32,
    /// Summed lifecycle transitions across all rounds.
    pub outcome: ApplyOutcome,
}
