//! The advisor's cost model.
//!
//! Every stored sketch is scored in *row equivalents*:
//!
//! ```text
//!   score = benefit − α · maintain_cost − β · heap_size
//! ```
//!
//! * **benefit** — the hot-window estimate of backend rows the sketch's
//!   rewrite skipped ([`crate::advisor::tracker::UseStats::hot_rows_skipped`]).
//!   A capture seeds the window with the query's own skip estimate, so a
//!   fresh sketch gets a grace period of a few passes before a cold
//!   template decays to zero benefit.
//! * **maintain_cost** — hot-window delta rows consumed plus wall-clock
//!   converted at [`AdvisorParams::nanos_per_row`] nanoseconds per row
//!   equivalent, weighted by `α`.
//! * **heap_size** — current heap bytes of the stored sketch (operator
//!   state + retained versions), weighted by `β` rows per byte: holding
//!   memory is a standing cost even for a sketch whose table never
//!   changes.
//!
//! The absolute numbers are heuristic; what matters is the *ordering* it
//! induces (the greedy knapsack of [`crate::advisor::select`]) and the
//! sign: a sketch whose score is not positive pays more in maintenance
//! and memory than it returns in skipping, and is demoted even when the
//! budget has room.

use crate::advisor::tracker::UseStats;

/// Tuning weights of the advisor cost model (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdvisorParams {
    /// Weight of the maintenance term, in kept-benefit rows per
    /// maintenance row equivalent.
    pub alpha: f64,
    /// Weight of the heap term, in rows per byte. The default charges one
    /// row equivalent per KiB held.
    pub beta: f64,
    /// Wall-clock to row-equivalent conversion for the maintenance term
    /// (default: 1 µs of maintenance ≈ processing one delta row).
    pub nanos_per_row: f64,
    /// Promotion hysteresis: a demoted sketch's score is damped by this
    /// factor when competing for the keep-set, so it must beat the
    /// incumbents by a real margin before displacing one. Without it two
    /// equally hot sketches under a one-sketch budget swap places every
    /// pass, paying a restore + maintain each time (default 0.8 = a 25%
    /// advantage required).
    pub promote_margin: f64,
}

impl Default for AdvisorParams {
    fn default() -> Self {
        AdvisorParams {
            alpha: 1.0,
            beta: 1.0 / 1024.0,
            nanos_per_row: 1_000.0,
            promote_margin: 0.8,
        }
    }
}

impl AdvisorParams {
    /// Score one stored sketch from its workload stats and current heap
    /// footprint, in row equivalents.
    pub fn score(&self, stats: &UseStats, heap_bytes: usize) -> f64 {
        let benefit = stats.hot_rows_skipped;
        let maintain = stats.hot_maint_delta_rows + stats.hot_maint_nanos / self.nanos_per_row;
        benefit - self.alpha * maintain - self.beta * heap_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_benefit_beats_costs() {
        let p = AdvisorParams::default();
        let hot = UseStats {
            hot_rows_skipped: 10_000.0,
            hot_maint_delta_rows: 100.0,
            ..Default::default()
        };
        assert!(p.score(&hot, 4096) > 0.0);
    }

    #[test]
    fn cold_sketch_scores_negative() {
        let p = AdvisorParams::default();
        let cold = UseStats {
            hot_rows_skipped: 0.0,
            hot_maint_delta_rows: 500.0,
            ..Default::default()
        };
        assert!(p.score(&cold, 4096) < 0.0);
    }

    #[test]
    fn heap_alone_is_a_standing_cost() {
        let p = AdvisorParams::default();
        // No uses, no maintenance — memory still pulls the score negative.
        assert!(p.score(&UseStats::default(), 10_240) < 0.0);
        assert_eq!(p.score(&UseStats::default(), 0), 0.0);
    }

    #[test]
    fn alpha_scales_the_maintenance_term() {
        let stats = UseStats {
            hot_rows_skipped: 1_000.0,
            hot_maint_delta_rows: 600.0,
            ..Default::default()
        };
        let cheap = AdvisorParams {
            alpha: 0.5,
            ..Default::default()
        };
        let dear = AdvisorParams {
            alpha: 2.0,
            ..Default::default()
        };
        assert!(cheap.score(&stats, 0) > 0.0);
        assert!(dear.score(&stats, 0) < 0.0);
    }
}
