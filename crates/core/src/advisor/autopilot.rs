//! The lifecycle autopilot: plan demotions/promotions, apply them to a
//! sketch store.
//!
//! Every stored sketch sits on a rung of the **lifecycle ladder**:
//!
//! ```text
//!   Maintained ──▶ Lazy ──▶ Evicted(-to-codec) ──▶ dropped
//!        ▲__________│____________│    (promotion restores + maintains,
//!                                      so the sketch lands byte-identical
//!                                      to one that was never demoted)
//! ```
//!
//! * **Maintained** — proactively maintained: routed scheduler deltas,
//!   eager batches, and stale sweeps all include it.
//! * **Lazy** — state stays in memory but nothing maintains it
//!   proactively; the first query that needs it maintains it on demand
//!   (split-invariant versioning makes the result identical to eager
//!   upkeep).
//! * **Evicted** — operator state is serialized through
//!   [`crate::state_codec`] (the paper's §2 eviction hook) and the
//!   in-memory structures are freed; the sketch bits stay available for
//!   fresh reuse, and the state is restored transparently before the next
//!   maintenance. Retained immutable versions are released too.
//! * **dropped** — the sketch leaves the store entirely (its tracker
//!   stats go too); a re-hot template re-captures on its next query and
//!   re-enters the ladder at `Maintained` with a fresh capture-seeded
//!   grace window.
//!
//! One [`plan_round`] demotes the losers of the budgeted selection a
//! single rung — gentle by default — and escalates (straight to
//! `Evicted`, then to drop) on the enforcement rounds
//! [`crate::advisor::Advisor`] runs while the store is still over budget.
//! Decisions only ever change *cost*: demoted sketches answer queries
//! through the same on-demand maintenance/restore/capture paths the
//! store already has, so answers are bit-for-bit unchanged.

use crate::advisor::cost::AdvisorParams;
use crate::advisor::select::{select_keep, Candidate};
use crate::advisor::tracker::{SketchKey, WorkloadTracker};
use crate::middleware::{
    evict_stored, maintain_entry, restore_if_evicted, ImpConfig, StoredSketch,
};
use crate::Result;
use imp_engine::Database;
use imp_sql::QueryTemplate;
use imp_storage::FxHashMap;

/// A stored sketch's rung on the advisor's lifecycle ladder (dropped
/// sketches are removed from the store, so they need no variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Lifecycle {
    /// Proactively maintained (the default for every capture).
    #[default]
    Maintained,
    /// In memory, but only maintained on demand by a query.
    Lazy,
    /// Operator state evicted to its serialized form; restored on demand.
    Evicted,
}

impl Lifecycle {
    /// The next rung down the ladder (`None` = drop).
    pub fn demoted(self) -> Option<Lifecycle> {
        match self {
            Lifecycle::Maintained => Some(Lifecycle::Lazy),
            Lifecycle::Lazy => Some(Lifecycle::Evicted),
            Lifecycle::Evicted => None,
        }
    }

    /// Short display label (summaries, harness tables).
    pub fn label(self) -> &'static str {
        match self {
            Lifecycle::Maintained => "maintained",
            Lifecycle::Lazy => "lazy",
            Lifecycle::Evicted => "evicted",
        }
    }
}

/// The advisor-relevant view of one stored sketch, gathered from the
/// in-line store directly or from shard workers via the `AdviseGather`
/// control barrier.
#[derive(Debug, Clone)]
pub struct SketchCard {
    /// Store key.
    pub template: QueryTemplate,
    /// Original SQL of the capturing query (candidate identity within the
    /// template).
    pub sql: String,
    /// Current lifecycle rung.
    pub lifecycle: Lifecycle,
    /// Resident heap bytes right now (the budget is enforced against the
    /// sum of these, matching `Imp::store_heap_size`).
    pub resident: usize,
    /// Heap bytes the sketch costs *if kept maintained*: the resident
    /// footprint plus, for evicted sketches, the serialized state size
    /// as a proxy for what restoring would bring back. The knapsack must
    /// price a promotion at its full cost — admitting an evicted sketch
    /// by its residual would promote it, overflow the budget, and
    /// re-evict it next round (thrash).
    pub heap: usize,
}

impl SketchCard {
    /// The tracker key of this sketch.
    pub fn key(&self) -> SketchKey {
        SketchKey::new(self.template.text(), self.sql.clone())
    }
}

/// What to do with one stored sketch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdviseOp {
    /// Move down to the given rung (strictly below the current one).
    Demote(Lifecycle),
    /// Remove the sketch from the store.
    Drop,
    /// Restore/maintain to current and mark [`Lifecycle::Maintained`].
    Promote,
}

/// One planned action, addressed by store identity.
#[derive(Debug, Clone)]
pub struct AdviseAction {
    /// Store key (also routes the action to its owning shard).
    pub template: QueryTemplate,
    /// Candidate identity within the template.
    pub sql: String,
    /// The operation.
    pub op: AdviseOp,
}

/// One planned round: the actions plus how many sketches the knapsack
/// kept.
#[derive(Debug, Clone, Default)]
pub struct PlannedRound {
    /// Actions to apply (may be empty — the store is already settled).
    pub actions: Vec<AdviseAction>,
    /// Size of the keep-set.
    pub kept: usize,
}

/// Plan one autopilot round over the gathered cards.
///
/// `escalation` is 0 for the regular pass (losers demote one rung,
/// keepers promote) and rises on the enforcement rounds the advisor runs
/// while the store is still over budget: 1 forces losers at least to
/// [`Lifecycle::Evicted`], ≥ 2 drops them. Promotions only happen at
/// escalation 0 — enforcement must never grow the store.
pub fn plan_round(
    cards: &[SketchCard],
    tracker: &WorkloadTracker,
    params: &AdvisorParams,
    budget: usize,
    escalation: u32,
) -> PlannedRound {
    let candidates: Vec<Candidate> = cards
        .iter()
        .enumerate()
        .map(|(index, card)| {
            let mut score = params.score(&tracker.get(&card.key()), card.heap);
            if card.lifecycle != Lifecycle::Maintained {
                // Promotion hysteresis: challengers must beat incumbents
                // by a margin, or equal workloads flap every pass.
                score *= params.promote_margin;
            }
            Candidate {
                index,
                score,
                heap: card.heap,
            }
        })
        .collect();
    let kept = select_keep(&candidates, budget);
    let mut actions = Vec::new();
    let mut kept_iter = kept.iter().peekable();
    for (index, card) in cards.iter().enumerate() {
        let is_kept = kept_iter.peek() == Some(&&index);
        if is_kept {
            kept_iter.next();
            if card.lifecycle != Lifecycle::Maintained && escalation == 0 {
                actions.push(AdviseAction {
                    template: card.template.clone(),
                    sql: card.sql.clone(),
                    op: AdviseOp::Promote,
                });
            }
            continue;
        }
        let op = match escalation {
            0 => match card.lifecycle.demoted() {
                Some(rung) => AdviseOp::Demote(rung),
                None => AdviseOp::Drop,
            },
            1 => match card.lifecycle {
                Lifecycle::Maintained | Lifecycle::Lazy => AdviseOp::Demote(Lifecycle::Evicted),
                Lifecycle::Evicted => AdviseOp::Drop,
            },
            _ => AdviseOp::Drop,
        };
        actions.push(AdviseAction {
            template: card.template.clone(),
            sql: card.sql.clone(),
            op,
        });
    }
    PlannedRound {
        actions,
        kept: kept.len(),
    }
}

/// Outcome of applying a batch of actions to one store (summed across
/// shards on the sharded backend).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ApplyOutcome {
    /// Sketches newly marked [`Lifecycle::Lazy`].
    pub demoted_lazy: usize,
    /// Sketches whose state was evicted to its serialized form.
    pub evicted: usize,
    /// Sketches removed from the store.
    pub dropped: usize,
    /// Sketches restored/maintained back to [`Lifecycle::Maintained`].
    pub promoted: usize,
    /// Heap bytes freed by evicting operator state to its serialized
    /// form.
    pub freed_bytes: usize,
}

impl ApplyOutcome {
    /// Merge another outcome (per-shard replies).
    pub fn absorb(&mut self, other: &ApplyOutcome) {
        self.demoted_lazy += other.demoted_lazy;
        self.evicted += other.evicted;
        self.dropped += other.dropped;
        self.promoted += other.promoted;
        self.freed_bytes += other.freed_bytes;
    }

    /// Did any action demote (including drops)?
    pub fn any_demotion(&self) -> bool {
        self.demoted_lazy + self.evicted + self.dropped > 0
    }
}

/// Apply planned actions to a sketch-store map — shared by the in-line
/// backend and the shard workers, so their lifecycle arithmetic cannot
/// drift. Actions addressing sketches that no longer exist are skipped
/// (a query may have raced a capture or drop in between on the sharded
/// backend). Promotion maintenance errors propagate; the maintenance
/// cost of successful promotions is recorded in `tracker`.
pub(crate) fn apply_to_store(
    store: &mut FxHashMap<QueryTemplate, Vec<StoredSketch>>,
    db: &Database,
    config: &ImpConfig,
    tracker: &WorkloadTracker,
    actions: &[AdviseAction],
) -> Result<ApplyOutcome> {
    let mut outcome = ApplyOutcome::default();
    for action in actions {
        let Some(entries) = store.get_mut(&action.template) else {
            continue;
        };
        let Some(pos) = entries.iter().position(|e| e.sql == action.sql) else {
            continue;
        };
        match action.op {
            AdviseOp::Demote(Lifecycle::Maintained) => {
                debug_assert!(false, "Demote(Maintained) is not a demotion");
            }
            AdviseOp::Demote(Lifecycle::Lazy) => {
                entries[pos].lifecycle = Lifecycle::Lazy;
                outcome.demoted_lazy += 1;
            }
            AdviseOp::Demote(Lifecycle::Evicted) => {
                let entry = &mut entries[pos];
                entry.lifecycle = Lifecycle::Evicted;
                outcome.freed_bytes += evict_stored(entry);
                // Retained immutable versions are a memory luxury the
                // demoted sketch no longer gets.
                entry.versions.clear();
                outcome.evicted += 1;
            }
            AdviseOp::Drop => {
                entries.remove(pos);
                if entries.is_empty() {
                    store.remove(&action.template);
                }
                // The stats go too, or ad-hoc templates would grow the
                // tracker without bound; a re-capture starts a fresh
                // entry with the capture-seeded grace window.
                tracker.forget(&SketchKey::new(action.template.text(), action.sql.clone()));
                outcome.dropped += 1;
            }
            AdviseOp::Promote => {
                let entry = &mut entries[pos];
                restore_if_evicted(entry)?;
                if entry.maintainer.is_stale(db) {
                    let report = maintain_entry(entry, db, config.retain_sketch_versions)?;
                    tracker.record_maintenance(
                        SketchKey::new(action.template.text(), action.sql.clone()),
                        report.advisor_cost(),
                    );
                }
                entry.lifecycle = Lifecycle::Maintained;
                outcome.promoted += 1;
            }
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advisor::tracker::UseKind;

    fn card(name: &str, lifecycle: Lifecycle, heap: usize) -> SketchCard {
        let stmt = imp_sql::parse_one(&format!("SELECT a FROM {name} WHERE a > 1")).unwrap();
        let imp_sql::Statement::Select(sel) = stmt else {
            unreachable!()
        };
        SketchCard {
            template: QueryTemplate::of(&sel),
            sql: format!("SELECT a FROM {name} WHERE a > 1"),
            lifecycle,
            resident: heap,
            heap,
        }
    }

    #[test]
    fn ladder_descends_one_rung_then_drops() {
        assert_eq!(Lifecycle::Maintained.demoted(), Some(Lifecycle::Lazy));
        assert_eq!(Lifecycle::Lazy.demoted(), Some(Lifecycle::Evicted));
        assert_eq!(Lifecycle::Evicted.demoted(), None);
    }

    #[test]
    fn losers_step_down_and_keepers_promote() {
        let tracker = WorkloadTracker::new();
        let params = AdvisorParams::default();
        let hot = card("hot", Lifecycle::Lazy, 100);
        let cold = card("cold", Lifecycle::Maintained, 100);
        tracker.record_use(hot.key(), UseKind::Fresh, 100_000);
        let round = plan_round(&[hot.clone(), cold.clone()], &tracker, &params, 1_000, 0);
        assert_eq!(round.kept, 1);
        assert_eq!(round.actions.len(), 2);
        assert!(round
            .actions
            .iter()
            .any(|a| a.sql == hot.sql && a.op == AdviseOp::Promote));
        assert!(round
            .actions
            .iter()
            .any(|a| a.sql == cold.sql && a.op == AdviseOp::Demote(Lifecycle::Lazy)));
    }

    #[test]
    fn escalation_jumps_rungs() {
        let tracker = WorkloadTracker::new();
        let params = AdvisorParams::default();
        let cards = [
            card("m", Lifecycle::Maintained, 100),
            card("l", Lifecycle::Lazy, 100),
            card("e", Lifecycle::Evicted, 100),
        ];
        let r1 = plan_round(&cards, &tracker, &params, 0, 1);
        assert!(r1
            .actions
            .iter()
            .all(|a| matches!(a.op, AdviseOp::Demote(Lifecycle::Evicted) | AdviseOp::Drop)));
        let r2 = plan_round(&cards, &tracker, &params, 0, 2);
        assert!(r2.actions.iter().all(|a| a.op == AdviseOp::Drop));
    }

    #[test]
    fn enforcement_rounds_never_promote() {
        let tracker = WorkloadTracker::new();
        let params = AdvisorParams::default();
        let hot = card("hot", Lifecycle::Evicted, 100);
        tracker.record_use(hot.key(), UseKind::Fresh, 100_000);
        let round = plan_round(&[hot], &tracker, &params, 1_000, 1);
        assert!(round.actions.is_empty());
        assert_eq!(round.kept, 1);
    }
}
