//! Workload tracking: who uses which sketch, and what each one costs.
//!
//! The [`WorkloadTracker`] is the advisor's sensory organ. Every path that
//! touches a stored sketch reports here:
//!
//! * the middleware's SELECT path records **uses** — a capture, a fresh
//!   reuse, or a maintain-then-use — together with the estimated number
//!   of backend rows the sketch rewrite skipped for that query
//!   (equi-depth estimate, see [`imp_engine::histogram::estimate_skipped_rows`]);
//! * every maintenance run (in-line sweeps, eager flushes, and the
//!   [`crate::sched`] shard workers' routed flushes) records its
//!   **cost** — wall-clock nanoseconds and delta rows consumed, taken
//!   from the run's [`crate::maintain::MaintReport`].
//!
//! Stats are keyed by `(template, sql)` — the same identity the store
//! uses for its per-template candidate lists — and carry two views:
//! monotone lifetime totals (inspection, the `fig_advisor` harness) and
//! an exponentially decayed *hot window* the cost model scores. Each
//! advisor pass halves the hot window ([`WorkloadTracker::decay`]), so a
//! sketch that stops being used cools off within a few passes while its
//! lifetime history stays intact.
//!
//! The tracker is shared (`Arc` + mutex) between the [`crate::middleware::Imp`]
//! front end and the shard workers of a sharded store; all methods take
//! `&self`.

use imp_storage::FxHashMap;
use parking_lot::Mutex;

/// Identity of one stored sketch: the store keys candidates by query
/// template and distinguishes them by the SQL they were captured for.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SketchKey {
    /// Canonical query template text.
    pub template: String,
    /// Original SQL of the capturing query.
    pub sql: String,
}

impl SketchKey {
    /// Build a key from template text and capturing SQL.
    pub fn new(template: impl Into<String>, sql: impl Into<String>) -> SketchKey {
        SketchKey {
            template: template.into(),
            sql: sql.into(),
        }
    }
}

/// How a SELECT touched a sketch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UseKind {
    /// A new sketch was captured for the query.
    Captured,
    /// An existing fresh sketch answered as-is.
    Fresh,
    /// A stale sketch was maintained on demand, then used.
    Maintained,
}

/// The maintenance cost of one run, as the advisor accounts it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintCost {
    /// Wall-clock nanoseconds of the run.
    pub nanos: u64,
    /// Delta rows consumed (fetched from the log or routed in).
    pub delta_rows: u64,
}

/// Per-sketch workload statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UseStats {
    /// Lifetime captures under this key (≥ 1 once stored; an advisor
    /// drop forgets the entry, so a re-capture restarts it at 1).
    pub captures: u64,
    /// Lifetime fresh reuses.
    pub fresh_uses: u64,
    /// Lifetime maintain-then-use reuses.
    pub maintained_uses: u64,
    /// Lifetime estimated backend rows skipped by the sketch rewrite.
    pub rows_skipped_est: u64,
    /// Lifetime maintenance runs.
    pub maint_runs: u64,
    /// Lifetime maintenance wall-clock nanoseconds.
    pub maint_nanos: u64,
    /// Lifetime delta rows consumed by maintenance.
    pub maint_delta_rows: u64,
    /// Hot-window uses (decayed; capture counts as a use).
    pub hot_uses: f64,
    /// Hot-window estimated rows skipped (decayed) — the benefit input of
    /// the cost model.
    pub hot_rows_skipped: f64,
    /// Hot-window maintenance nanoseconds (decayed).
    pub hot_maint_nanos: f64,
    /// Hot-window maintenance delta rows (decayed).
    pub hot_maint_delta_rows: f64,
    /// Lifetime end-to-end latency (nanoseconds) of sketch-answered
    /// SELECTs under this key, as observed by the middleware's obs layer.
    pub query_nanos: u64,
    /// Number of latency samples in [`UseStats::query_nanos`].
    pub query_samples: u64,
}

impl UseStats {
    /// Total lifetime uses (captures + reuses).
    pub fn total_uses(&self) -> u64 {
        self.captures + self.fresh_uses + self.maintained_uses
    }

    /// Mean observed end-to-end query latency in nanoseconds (0 before
    /// any sample).
    pub fn mean_query_nanos(&self) -> u64 {
        self.query_nanos
            .checked_div(self.query_samples)
            .unwrap_or(0)
    }
}

/// Shared per-sketch workload statistics (see the module docs).
#[derive(Debug, Default)]
pub struct WorkloadTracker {
    stats: Mutex<FxHashMap<SketchKey, UseStats>>,
}

impl WorkloadTracker {
    /// Fresh tracker with no history.
    pub fn new() -> WorkloadTracker {
        WorkloadTracker::default()
    }

    /// Record one SELECT touching the sketch, with the estimated backend
    /// rows its rewrite skipped for this query. Takes the key by value —
    /// the recording paths build it anyway, and the map insert reuses the
    /// allocation instead of cloning.
    pub fn record_use(&self, key: SketchKey, kind: UseKind, rows_skipped_est: u64) {
        let mut stats = self.stats.lock();
        let s = stats.entry(key).or_default();
        match kind {
            UseKind::Captured => s.captures += 1,
            UseKind::Fresh => s.fresh_uses += 1,
            UseKind::Maintained => s.maintained_uses += 1,
        }
        s.rows_skipped_est += rows_skipped_est;
        s.hot_uses += 1.0;
        s.hot_rows_skipped += rows_skipped_est as f64;
    }

    /// Record one maintenance run of the sketch.
    pub fn record_maintenance(&self, key: SketchKey, cost: MaintCost) {
        let mut stats = self.stats.lock();
        let s = stats.entry(key).or_default();
        s.maint_runs += 1;
        s.maint_nanos += cost.nanos;
        s.maint_delta_rows += cost.delta_rows;
        s.hot_maint_nanos += cost.nanos as f64;
        s.hot_maint_delta_rows += cost.delta_rows as f64;
    }

    /// Record the observed end-to-end latency of one sketch-answered
    /// SELECT. Only updates keys already tracked by a use — a subsumed
    /// query's SQL differs from the capturing SQL of the sketch that
    /// answered it, and a latency-only entry under the wrong key would
    /// just be pruned by the next `retain_live` pass.
    pub fn record_query_latency(&self, key: &SketchKey, nanos: u64) {
        let mut stats = self.stats.lock();
        if let Some(s) = stats.get_mut(key) {
            s.query_nanos += nanos;
            s.query_samples += 1;
        }
    }

    /// Drop the stats of one sketch. Every path that removes a sketch
    /// from the store (advisor drops, the per-template candidate-count
    /// eviction on capture) forgets it here too, or a long-running store
    /// with ad-hoc templates would grow the tracker without bound.
    pub fn forget(&self, key: &SketchKey) {
        self.stats.lock().remove(key);
    }

    /// Retain only the given live keys — each advisor pass prunes
    /// entries orphaned by store removals the forget hooks missed, so
    /// the tracker is bounded by the live store whenever the autopilot
    /// is active.
    pub fn retain_live(&self, live: &imp_storage::FxHashSet<SketchKey>) {
        self.stats.lock().retain(|k, _| live.contains(k));
    }

    /// Stats of one sketch (zeroed default when never seen).
    pub fn get(&self, key: &SketchKey) -> UseStats {
        self.stats.lock().get(key).copied().unwrap_or_default()
    }

    /// All tracked stats, sorted by key (deterministic inspection order).
    pub fn snapshot(&self) -> Vec<(SketchKey, UseStats)> {
        let mut out: Vec<(SketchKey, UseStats)> = self
            .stats
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Halve every hot window — called once per advisor pass, so benefit
    /// and cost estimates are exponential moving averages over passes.
    pub fn decay(&self) {
        for s in self.stats.lock().values_mut() {
            s.hot_uses /= 2.0;
            s.hot_rows_skipped /= 2.0;
            s.hot_maint_nanos /= 2.0;
            s.hot_maint_delta_rows /= 2.0;
        }
    }

    /// Number of tracked sketch keys.
    pub fn len(&self) -> usize {
        self.stats.lock().len()
    }

    /// True iff nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.stats.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: &str) -> SketchKey {
        SketchKey::new(n, n)
    }

    #[test]
    fn uses_and_costs_accumulate() {
        let t = WorkloadTracker::new();
        t.record_use(key("q"), UseKind::Captured, 100);
        t.record_use(key("q"), UseKind::Fresh, 80);
        t.record_use(key("q"), UseKind::Maintained, 60);
        t.record_maintenance(
            key("q"),
            MaintCost {
                nanos: 5_000,
                delta_rows: 42,
            },
        );
        let s = t.get(&key("q"));
        assert_eq!(s.captures, 1);
        assert_eq!(s.fresh_uses, 1);
        assert_eq!(s.maintained_uses, 1);
        assert_eq!(s.total_uses(), 3);
        assert_eq!(s.rows_skipped_est, 240);
        assert_eq!(s.maint_runs, 1);
        assert_eq!(s.maint_delta_rows, 42);
        assert_eq!(s.hot_uses, 3.0);
        assert_eq!(s.hot_rows_skipped, 240.0);
    }

    #[test]
    fn decay_halves_hot_windows_only() {
        let t = WorkloadTracker::new();
        t.record_use(key("q"), UseKind::Fresh, 100);
        t.decay();
        t.decay();
        let s = t.get(&key("q"));
        assert_eq!(s.fresh_uses, 1);
        assert_eq!(s.rows_skipped_est, 100);
        assert_eq!(s.hot_uses, 0.25);
        assert_eq!(s.hot_rows_skipped, 25.0);
    }

    #[test]
    fn query_latency_feeds_only_tracked_keys() {
        let t = WorkloadTracker::new();
        // Unknown key: ignored, no entry created.
        t.record_query_latency(&key("ghost"), 1_000);
        assert!(t.is_empty());
        t.record_use(key("q"), UseKind::Fresh, 10);
        t.record_query_latency(&key("q"), 1_000);
        t.record_query_latency(&key("q"), 3_000);
        let s = t.get(&key("q"));
        assert_eq!(s.query_samples, 2);
        assert_eq!(s.query_nanos, 4_000);
        assert_eq!(s.mean_query_nanos(), 2_000);
    }

    #[test]
    fn snapshot_is_sorted() {
        let t = WorkloadTracker::new();
        t.record_use(key("b"), UseKind::Fresh, 1);
        t.record_use(key("a"), UseKind::Fresh, 1);
        let snap = t.snapshot();
        assert_eq!(snap.len(), 2);
        assert!(snap[0].0 < snap[1].0);
    }
}
