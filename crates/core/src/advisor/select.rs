//! Budgeted keep-set selection.
//!
//! Given scored sketches and a memory budget, pick the set that keeps
//! the most benefit in memory: the classic 0/1-knapsack, solved greedily
//! by **score density** (score per heap byte) — the standard
//! approximation, and the right trade-off here because the advisor
//! re-runs every pass and sketch populations are small (tens to
//! hundreds). Only sketches with a *positive* score are eligible: a
//! sketch that costs more than it returns is not worth budget even when
//! budget is free (see [`crate::advisor::cost`]).
//!
//! Ties break deterministically (higher score, then lower index), so the
//! in-line and sharded stores — and repeated runs over identical
//! histories — always select the same keep-set.

/// One knapsack candidate: a stored sketch's score and current heap use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Caller-side index of the sketch (into its card list).
    pub index: usize,
    /// Cost-model score, in row equivalents.
    pub score: f64,
    /// Current heap bytes of the stored sketch.
    pub heap: usize,
}

/// Greedy knapsack: indices of the candidates to keep fully maintained
/// under `budget` heap bytes, sorted ascending.
pub fn select_keep(candidates: &[Candidate], budget: usize) -> Vec<usize> {
    let mut eligible: Vec<&Candidate> = candidates.iter().filter(|c| c.score > 0.0).collect();
    eligible.sort_by(|a, b| {
        let da = a.score / a.heap.max(1) as f64;
        let db = b.score / b.heap.max(1) as f64;
        db.total_cmp(&da)
            .then(b.score.total_cmp(&a.score))
            .then(a.index.cmp(&b.index))
    });
    let mut kept = Vec::new();
    let mut used = 0usize;
    for c in eligible {
        if used + c.heap <= budget {
            used += c.heap;
            kept.push(c.index);
        }
    }
    kept.sort_unstable();
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(index: usize, score: f64, heap: usize) -> Candidate {
        Candidate { index, score, heap }
    }

    #[test]
    fn keeps_densest_within_budget() {
        let cands = [
            cand(0, 100.0, 100), // density 1.0
            cand(1, 300.0, 100), // density 3.0
            cand(2, 150.0, 100), // density 1.5
        ];
        assert_eq!(select_keep(&cands, 200), vec![1, 2]);
        assert_eq!(select_keep(&cands, 300), vec![0, 1, 2]);
    }

    #[test]
    fn negative_and_zero_scores_are_never_kept() {
        let cands = [cand(0, -5.0, 10), cand(1, 0.0, 10), cand(2, 1.0, 10)];
        assert_eq!(select_keep(&cands, usize::MAX), vec![2]);
    }

    #[test]
    fn tiny_budget_keeps_nothing() {
        let cands = [cand(0, 10.0, 100)];
        assert!(select_keep(&cands, 50).is_empty());
    }

    #[test]
    fn greedy_skips_oversized_but_fills_remainder() {
        let cands = [
            cand(0, 500.0, 90), // densest but nearly fills the budget
            cand(1, 30.0, 20),
            cand(2, 20.0, 10),
        ];
        // 90 fits; 20 does not (90+20 > 100); 10 does.
        assert_eq!(select_keep(&cands, 100), vec![0, 2]);
    }

    #[test]
    fn deterministic_tie_break_on_equal_density() {
        let cands = [cand(1, 10.0, 10), cand(0, 10.0, 10)];
        assert_eq!(select_keep(&cands, 10), vec![0]);
    }
}
