//! Shard workers: each owns a disjoint slice of the sketch store.
//!
//! A worker drains its queue in gathered batches: the first message is
//! taken blocking, then everything already queued is taken non-blocking
//! until a control message or the coalescing budget ends the gather.
//! Routed [`TableDelta`]s gathered for the same table **coalesce** into
//! one pending group, so one maintenance run absorbs them in a single
//! pass per sketch (the paper's batched-eager maintenance, applied per
//! shard). Control messages act as barriers: pending deltas are flushed
//! first, then the control request runs against the settled store.
//!
//! Workers never take the middleware lock — they share the database via
//! `Arc<RwLock<Database>>` read guards and publish results as immutable
//! snapshots (see [`crate::sched::snapshot`]).

use crate::advisor::{
    AdviseAction, ApplyOutcome, Lifecycle, SketchCard, SketchKey, WorkloadTracker,
};
use crate::maintain::MaintReport;
use crate::metrics::SchedMetrics;
use crate::middleware::{
    restore_if_evicted, retain_version, stored_heap_size, summarize, ImpConfig, PublishedMeta,
    SketchStateView, SketchSummary, StoredSketch, MAX_SKETCHES_PER_TEMPLATE,
};
use crate::sched::router::TableDelta;
use crate::sched::snapshot::{PublishedSketch, SnapshotBoard};
use crate::Result;
use crossbeam::channel::{Receiver, Sender};
use imp_engine::Database;
use imp_sketch::SketchSet;
use imp_sql::{LogicalPlan, QueryTemplate};
use imp_storage::FxHashMap;
use parking_lot::RwLock;
use std::sync::Arc;

/// Reply to an on-demand maintenance request: the report plus the fresh
/// sketch (cloned bits — the worker keeps the live one).
#[derive(Debug)]
pub struct MaintainReply {
    /// The maintenance report (for [`crate::middleware::QueryMode::Maintained`]).
    pub report: Box<MaintReport>,
    /// The maintained sketch.
    pub sketch: SketchSet,
}

/// Synchronous snapshot of one shard's store (inspection barriers).
#[derive(Debug)]
pub struct ShardReport {
    /// Per-sketch summaries (unsorted).
    pub summaries: Vec<SketchSummary>,
    /// Comparable sketch states (unsorted).
    pub states: Vec<SketchStateView>,
    /// Total heap bytes of the shard's sketch state.
    pub heap: usize,
    /// Minimum maintained version across the shard's sketches.
    pub min_version: Option<u64>,
    /// Per table, the minimum maintained version across the shard's
    /// sketches referencing it (the table's vacuum horizon).
    pub table_versions: Vec<(String, u64)>,
    /// Number of stored sketches.
    pub count: usize,
    /// Last maintenance error, if any — sticky: it stays reported until a
    /// newer error supersedes it, so unrelated admin inspections cannot
    /// swallow the only record of an async routed-maintenance failure.
    pub last_error: Option<String>,
}

/// Messages a shard worker understands.
pub(crate) enum ShardMsg {
    /// A routed table delta (coalescable).
    Delta(Arc<TableDelta>),
    /// Take ownership of a freshly captured sketch.
    AddSketch {
        /// Store key.
        template: QueryTemplate,
        /// The sketch (boxed: large).
        sketch: Box<StoredSketch>,
        /// Ack once stored and published.
        reply: Sender<()>,
    },
    /// Bring the subsuming candidate of `template`/`plan` fully current.
    MaintainSketch {
        /// Store key.
        template: QueryTemplate,
        /// The querying plan (subsumption check).
        plan: Box<LogicalPlan>,
        /// `Ok(None)` when no candidate subsumes the plan anymore; a
        /// maintenance failure propagates to the requesting caller.
        reply: Sender<Result<Option<MaintainReply>>>,
    },
    /// Maintain every stale sketch; reply with the reports when asked.
    MaintainStale {
        /// `None` = fire-and-forget kick (background ticks). The reply
        /// carries the successful reports plus the first error, if any.
        reply: Option<Sender<(Vec<MaintReport>, Option<crate::CoreError>)>>,
    },
    /// Report the shard's store state.
    Inspect {
        /// Reply channel.
        reply: Sender<ShardReport>,
    },
    /// Evict operator state to serialized form; reply = bytes freed.
    Evict {
        /// `None` = every sketch of the shard; `Some` = only that
        /// template's candidates ([`crate::middleware::Imp::evict_state`]).
        template: Option<QueryTemplate>,
        /// Reply channel.
        reply: Sender<usize>,
    },
    /// Flush every sketch's annotation-pool / row-interner caches; reply
    /// = sketches flushed.
    FlushPools {
        /// Reply channel.
        reply: Sender<usize>,
    },
    /// Report the advisor's view of the shard's sketches.
    AdviseGather {
        /// Reply channel.
        reply: Sender<Vec<SketchCard>>,
    },
    /// Apply one planned advisor round to the shard's sketches.
    AdviseApply {
        /// Actions addressed to this shard's templates.
        actions: Vec<AdviseAction>,
        /// Lifecycle transitions applied (promotion maintenance errors
        /// propagate to the advising caller).
        reply: Sender<Result<ApplyOutcome>>,
    },
    /// Recapture everything with fresh equi-depth partitions.
    Repartition {
        /// Reply = sketches recaptured.
        reply: Sender<usize>,
    },
    /// Barrier: every earlier message has been fully processed.
    Drain {
        /// Reply channel.
        reply: Sender<()>,
    },
    /// Park the worker until `resume` yields (or its sender drops).
    Pause {
        /// Acked once parked.
        ack: Sender<()>,
        /// Unparks the worker.
        resume: Receiver<()>,
    },
    /// Exit the worker loop.
    Stop,
}

/// One shard worker's state (runs on its own thread).
pub(crate) struct ShardWorker {
    id: usize,
    db: Arc<RwLock<Database>>,
    rx: Receiver<ShardMsg>,
    config: ImpConfig,
    board: Arc<SnapshotBoard>,
    metrics: Arc<SchedMetrics>,
    store: FxHashMap<QueryTemplate, Vec<StoredSketch>>,
    /// Table → coalesced routed batches awaiting one maintenance run.
    pending: FxHashMap<String, Vec<Arc<TableDelta>>>,
    /// Shared workload tracker (maintenance costs recorded worker-side).
    tracker: Arc<WorkloadTracker>,
    last_error: Option<String>,
}

impl ShardWorker {
    pub(crate) fn new(
        id: usize,
        db: Arc<RwLock<Database>>,
        rx: Receiver<ShardMsg>,
        config: ImpConfig,
        board: Arc<SnapshotBoard>,
        metrics: Arc<SchedMetrics>,
        tracker: Arc<WorkloadTracker>,
    ) -> ShardWorker {
        ShardWorker {
            id,
            db,
            rx,
            config,
            board,
            metrics,
            store: FxHashMap::default(),
            pending: FxHashMap::default(),
            tracker,
            last_error: None,
        }
    }

    /// The worker loop: gather → flush pending deltas → run controls.
    pub(crate) fn run(mut self) {
        loop {
            let Ok(first) = self.rx.recv() else {
                break; // all senders gone
            };
            self.metrics.dequeued(self.id);
            let mut controls = Vec::new();
            let mut stop = false;
            let mut budget_hit = self.accept(first, &mut controls, &mut stop);
            // Gather whatever is already queued. The gather ends when a
            // control message arrives (it must observe the flushed
            // store) or a table's pending entries reach the per-table
            // coalescing budget.
            while controls.is_empty() && !stop && !budget_hit {
                match self.rx.try_recv() {
                    Ok(msg) => {
                        self.metrics.dequeued(self.id);
                        budget_hit = self.accept(msg, &mut controls, &mut stop);
                    }
                    Err(_) => break,
                }
            }
            if !self.pending.is_empty() {
                self.flush_pending();
            }
            for control in controls {
                self.handle_control(control);
            }
            if stop {
                break;
            }
        }
    }

    /// Sort one message into pending deltas / controls / stop. Returns
    /// true when the accepted delta's table reached the per-table
    /// coalescing budget (its next batch must go into a new run).
    fn accept(&mut self, msg: ShardMsg, controls: &mut Vec<ShardMsg>, stop: &mut bool) -> bool {
        match msg {
            ShardMsg::Delta(delta) => {
                let parts = self.pending.entry(delta.table.clone()).or_default();
                if !parts.is_empty() {
                    // A pending batch for the same table already waits:
                    // this one coalesces into the same maintenance run.
                    self.metrics
                        .coalesced_batches
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
                parts.push(delta);
                let table_entries: usize = parts.iter().map(|p| p.entries.len()).sum();
                table_entries >= self.config.coalesce_budget.max(1)
            }
            ShardMsg::Stop => {
                *stop = true;
                false
            }
            control => {
                controls.push(control);
                false
            }
        }
    }

    /// One maintenance run over the coalesced pending deltas. Sketches
    /// the advisor demoted below [`Lifecycle::Maintained`] are skipped —
    /// they are brought current on demand by the next query that needs
    /// them (the delta log keeps their records; vacuum horizons respect
    /// every stored sketch's maintained version).
    fn flush_pending(&mut self) {
        let routed = std::mem::take(&mut self.pending);
        let db = self.db.read();
        for (template, entries) in self.store.iter_mut() {
            for entry in entries.iter_mut() {
                if entry.lifecycle != Lifecycle::Maintained
                    || !entry
                        .maintainer
                        .tables()
                        .iter()
                        .any(|t| routed.contains_key(t))
                {
                    continue;
                }
                let mut run = || -> Result<MaintReport> {
                    restore_if_evicted(entry)?;
                    let report = entry.maintainer.maintain_from(&db, &routed)?;
                    retain_version(entry, self.config.retain_sketch_versions);
                    Ok(report)
                };
                match run() {
                    Ok(report) => {
                        self.metrics
                            .maintain_runs
                            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        self.tracker.record_maintenance(
                            SketchKey::new(template.text(), entry.sql.clone()),
                            report.advisor_cost(),
                        );
                    }
                    Err(e) => self.last_error = Some(e.to_string()),
                }
            }
        }
        drop(db);
        self.publish();
    }

    fn handle_control(&mut self, msg: ShardMsg) {
        match msg {
            ShardMsg::Delta(_) | ShardMsg::Stop => unreachable!("not a control message"),
            ShardMsg::AddSketch {
                template,
                sketch,
                reply,
            } => {
                if let Some(entries) = self.store.get_mut(&template) {
                    if entries.len() >= MAX_SKETCHES_PER_TEMPLATE {
                        let old = entries.remove(0); // evict the oldest candidate
                        self.tracker
                            .forget(&SketchKey::new(template.text(), old.sql));
                    }
                }
                self.store.entry(template).or_default().push(*sketch);
                self.publish();
                let _ = reply.send(());
            }
            ShardMsg::MaintainSketch {
                template,
                plan,
                reply,
            } => {
                let result = self.maintain_one(&template, &plan);
                if matches!(result, Ok(Some(_))) {
                    self.publish();
                }
                let _ = reply.send(result);
            }
            ShardMsg::MaintainStale { reply } => {
                let (reports, error) = self.maintain_stale();
                if !reports.is_empty() {
                    self.publish();
                }
                match reply {
                    Some(reply) => {
                        let _ = reply.send((reports, error));
                    }
                    None => {
                        // Fire-and-forget kick: surface the error through
                        // the next inspection instead.
                        if let Some(e) = error {
                            self.last_error = Some(e.to_string());
                        }
                    }
                }
            }
            ShardMsg::Inspect { reply } => {
                let _ = reply.send(self.inspect());
            }
            ShardMsg::Evict { template, reply } => {
                let mut freed = 0usize;
                let targeted: Box<dyn Iterator<Item = &mut StoredSketch>> = match &template {
                    Some(t) => match self.store.get_mut(t) {
                        Some(entries) => Box::new(entries.iter_mut()),
                        None => Box::new(std::iter::empty()),
                    },
                    None => Box::new(self.store.values_mut().flatten()),
                };
                for entry in targeted {
                    freed += crate::middleware::evict_stored(entry);
                }
                let _ = reply.send(freed);
            }
            ShardMsg::FlushPools { reply } => {
                let mut flushed = 0usize;
                for entry in self.store.values_mut().flatten() {
                    entry.maintainer.flush_pool_caches();
                    flushed += 1;
                }
                let _ = reply.send(flushed);
            }
            ShardMsg::AdviseGather { reply } => {
                let cards = self
                    .store
                    .iter()
                    .flat_map(|(template, entries)| {
                        entries
                            .iter()
                            .map(|e| crate::middleware::advisor_card(template, e))
                    })
                    .collect();
                let _ = reply.send(cards);
            }
            ShardMsg::AdviseApply { actions, reply } => {
                let result = {
                    let db = self.db.read();
                    crate::advisor::autopilot::apply_to_store(
                        &mut self.store,
                        &db,
                        &self.config,
                        &self.tracker,
                        &actions,
                    )
                };
                // Drops and promotions change published counts/bits.
                self.publish();
                let _ = reply.send(result);
            }
            ShardMsg::Repartition { reply } => {
                let _ = reply.send(self.repartition());
            }
            ShardMsg::Drain { reply } => {
                let _ = reply.send(());
            }
            ShardMsg::Pause { ack, resume } => {
                let _ = ack.send(());
                let _ = resume.recv(); // parked until resumed (or dropped)
            }
        }
    }

    /// Bring the subsuming candidate current via the direct fetching path
    /// (any still-queued routed batches become version-filtered no-ops).
    /// `Ok(None)` = no candidate subsumes the plan; errors propagate to
    /// the requesting caller, mirroring the in-line backend.
    fn maintain_one(
        &mut self,
        template: &QueryTemplate,
        plan: &LogicalPlan,
    ) -> Result<Option<MaintainReply>> {
        let Some(entries) = self.store.get_mut(template) else {
            return Ok(None);
        };
        let Some(entry) = entries
            .iter_mut()
            .find(|e| crate::middleware::plan_subsumes(&e.plan, plan))
        else {
            return Ok(None);
        };
        let db = self.db.read();
        let report =
            crate::middleware::maintain_entry(entry, &db, self.config.retain_sketch_versions)?;
        self.metrics
            .maintain_runs
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.tracker.record_maintenance(
            SketchKey::new(template.text(), entry.sql.clone()),
            report.advisor_cost(),
        );
        Ok(Some(MaintainReply {
            report: Box::new(report),
            sketch: entry.maintainer.sketch().clone(),
        }))
    }

    /// Maintain every stale [`Lifecycle::Maintained`] sketch (demoted
    /// ones wait for an on-demand query), continuing past failures (other
    /// shards keep working either way); the first error rides along.
    fn maintain_stale(&mut self) -> (Vec<MaintReport>, Option<crate::CoreError>) {
        let db = self.db.read();
        let mut reports = Vec::new();
        let mut first_error = None;
        for (template, entries) in self.store.iter_mut() {
            for entry in entries.iter_mut() {
                if entry.lifecycle != Lifecycle::Maintained || !entry.maintainer.is_stale(&db) {
                    continue;
                }
                match crate::middleware::maintain_entry(
                    entry,
                    &db,
                    self.config.retain_sketch_versions,
                ) {
                    Ok(report) => {
                        self.metrics
                            .maintain_runs
                            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        self.tracker.record_maintenance(
                            SketchKey::new(template.text(), entry.sql.clone()),
                            report.advisor_cost(),
                        );
                        reports.push(report);
                    }
                    Err(e) => {
                        if first_error.is_none() {
                            first_error = Some(e);
                        } else {
                            self.last_error = Some(e.to_string());
                        }
                    }
                }
            }
        }
        (reports, first_error)
    }

    fn inspect(&mut self) -> ShardReport {
        let db = self.db.read();
        let mut summaries = Vec::new();
        let mut states = Vec::new();
        let mut heap = 0usize;
        let mut min_version: Option<u64> = None;
        let mut table_versions: FxHashMap<String, u64> = FxHashMap::default();
        let mut count = 0usize;
        for (template, entries) in &self.store {
            for e in entries {
                summaries.push(summarize(template, e, &db));
                states.push(SketchStateView {
                    template: template.text().to_string(),
                    sql: e.sql.clone(),
                    version: e.maintainer.version(),
                    bits: e.maintainer.sketch().bits().clone(),
                });
                heap += stored_heap_size(e);
                min_version = Some(
                    min_version.map_or(e.maintainer.version(), |m| m.min(e.maintainer.version())),
                );
                for table in e.maintainer.tables() {
                    let v = table_versions
                        .entry(table.clone())
                        .or_insert_with(|| e.maintainer.version());
                    *v = (*v).min(e.maintainer.version());
                }
                count += 1;
            }
        }
        ShardReport {
            summaries,
            states,
            heap,
            min_version,
            table_versions: table_versions.into_iter().collect(),
            count,
            last_error: self.last_error.clone(),
        }
    }

    /// Recapture every sketch with fresh equi-depth partitions (§7.4) —
    /// the shared [`crate::middleware::repartition_store`] loop, with the
    /// error surfaced through inspection (no synchronous caller to fail).
    fn repartition(&mut self) -> usize {
        let db = self.db.read();
        let recaptured =
            match crate::middleware::repartition_store(&mut self.store, &db, &self.config) {
                Ok(n) => n,
                Err(e) => {
                    self.last_error = Some(e.to_string());
                    0
                }
            };
        drop(db);
        self.publish();
        recaptured
    }

    /// Publish the shard's current sketches as an immutable snapshot.
    /// The plan/SQL/tables of each entry are `Arc`-wrapped once and
    /// cached — per flush only the sketch bits are cloned.
    fn publish(&mut self) {
        let sketches = self
            .store
            .iter_mut()
            .flat_map(|(template, entries)| {
                entries.iter_mut().map(|e| {
                    if e.published_meta.is_none() {
                        e.published_meta = Some(PublishedMeta {
                            sql: Arc::from(e.sql.as_str()),
                            plan: Arc::new(e.plan.clone()),
                            tables: e.maintainer.tables().to_vec().into(),
                        });
                    }
                    let meta = e.published_meta.as_ref().expect("just filled");
                    PublishedSketch {
                        template: template.clone(),
                        sql: Arc::clone(&meta.sql),
                        plan: Arc::clone(&meta.plan),
                        tables: Arc::clone(&meta.tables),
                        sketch: Arc::new(e.maintainer.sketch().clone()),
                        version: e.maintainer.version(),
                    }
                })
            })
            .collect();
        self.board.publish(self.id, sketches);
    }
}
