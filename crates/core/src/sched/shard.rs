//! Shard workers: each serves one shard's control channel and claims
//! maintenance work from the shared inboxes.
//!
//! A worker's loop alternates between three duties:
//!
//! 1. **Controls** — messages on its own channel (add/maintain/inspect/
//!    pause/…). Every control is a barrier: the worker first drains the
//!    async-ingest staging queue and flushes its own inbox, then runs the
//!    control against the settled store.
//! 2. **Own work** — claim a coalesced whole-batch prefix of its own
//!    inbox (see `crate::sched::steal`) and run one maintenance pass
//!    over it. Routed batches gathered for the same table **coalesce**
//!    into one run per sketch (the paper's batched-eager maintenance,
//!    applied per shard), bounded by
//!    [`crate::middleware::ImpConfig::coalesce_budget`].
//! 3. **Stealing** — when its own inbox is empty and
//!    [`crate::middleware::ImpConfig::work_stealing`] is on, claim from
//!    another shard's inbox. The victim's state lock serializes the
//!    claim against its owner, so stolen batches are processed with the
//!    victim's own sketch state, in the victim's inbox order —
//!    byte-identical to the owner doing the work itself.
//!
//! When nothing is queued anywhere the worker blocks on its channel with
//! a short timeout (`IDLE_WAIT`) — wake nudges make routed work prompt,
//! the timeout is only the safety net for lost nudges.
//!
//! Workers never take the middleware lock — they share the database via
//! `Arc<RwLock<Database>>` read guards and publish results as immutable
//! snapshots (see [`crate::sched::snapshot`]).

use crate::advisor::{
    AdviseAction, ApplyOutcome, Lifecycle, SketchCard, SketchKey, WorkloadTracker,
};
use crate::maintain::MaintReport;
use crate::metrics::SchedMetrics;
use crate::middleware::{
    restore_if_evicted, retain_version, stored_heap_size, summarize, ImpConfig, PublishedMeta,
    SketchStateView, SketchSummary, StoredSketch, MAX_SKETCHES_PER_TEMPLATE,
};
use crate::obs::{trace, Obs, ObsEvent};
use crate::sched::snapshot::{PublishedSketch, SnapshotBoard};
use crate::sched::steal::{SchedShared, ShardState};
use crate::Result;
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use imp_engine::Database;
use imp_sketch::SketchSet;
use imp_sql::{LogicalPlan, QueryTemplate};
use imp_storage::FxHashMap;
use parking_lot::RwLock;
use std::sync::Arc;
use std::time::Duration;

/// Idle block on the control channel: the safety net behind wake nudges.
const IDLE_WAIT: Duration = Duration::from_millis(20);

/// Reply to an on-demand maintenance request: the report plus the fresh
/// sketch (cloned bits — the worker keeps the live one).
#[derive(Debug)]
pub struct MaintainReply {
    /// The maintenance report (for [`crate::middleware::QueryMode::Maintained`]).
    pub report: Box<MaintReport>,
    /// The maintained sketch.
    pub sketch: SketchSet,
}

/// Synchronous snapshot of one shard's store (inspection barriers).
#[derive(Debug)]
pub struct ShardReport {
    /// Per-sketch summaries (unsorted).
    pub summaries: Vec<SketchSummary>,
    /// Comparable sketch states (unsorted).
    pub states: Vec<SketchStateView>,
    /// Total heap bytes of the shard's sketch state.
    pub heap: usize,
    /// Minimum maintained version across the shard's sketches.
    pub min_version: Option<u64>,
    /// Per table, the minimum maintained version across the shard's
    /// sketches referencing it (the table's vacuum horizon).
    pub table_versions: Vec<(String, u64)>,
    /// Number of stored sketches.
    pub count: usize,
    /// Last maintenance error, if any — sticky: it stays reported until a
    /// newer error supersedes it, so unrelated admin inspections cannot
    /// swallow the only record of an async routed-maintenance failure.
    pub last_error: Option<String>,
}

/// Messages a shard worker understands. Routed deltas do **not** travel
/// here — they go through the shared inboxes (`crate::sched::steal`);
/// the channel carries controls and edge-triggered wake nudges only.
pub(crate) enum ShardMsg {
    /// Nudge: queued work may exist (staged ingest or a routed batch).
    Wake,
    /// Take ownership of a freshly captured sketch.
    AddSketch {
        /// Store key.
        template: QueryTemplate,
        /// The sketch (boxed: large).
        sketch: Box<StoredSketch>,
        /// Ack once stored and published.
        reply: Sender<()>,
    },
    /// Bring the subsuming candidate of `template`/`plan` fully current.
    MaintainSketch {
        /// Store key.
        template: QueryTemplate,
        /// The querying plan (subsumption check).
        plan: Box<LogicalPlan>,
        /// `Ok(None)` when no candidate subsumes the plan anymore; a
        /// maintenance failure propagates to the requesting caller.
        reply: Sender<Result<Option<MaintainReply>>>,
    },
    /// Maintain every stale sketch; reply with the reports when asked.
    MaintainStale {
        /// `None` = fire-and-forget kick (background ticks). The reply
        /// carries the successful reports plus the first error, if any.
        reply: Option<Sender<(Vec<MaintReport>, Option<crate::CoreError>)>>,
    },
    /// Report the shard's store state.
    Inspect {
        /// Reply channel.
        reply: Sender<ShardReport>,
    },
    /// Evict operator state to serialized form; reply = bytes freed.
    Evict {
        /// `None` = every sketch of the shard; `Some` = only that
        /// template's candidates ([`crate::middleware::Imp::evict_state`]).
        template: Option<QueryTemplate>,
        /// Reply channel.
        reply: Sender<usize>,
    },
    /// Flush every sketch's annotation-pool / row-interner caches; reply
    /// = sketches flushed.
    FlushPools {
        /// Reply channel.
        reply: Sender<usize>,
    },
    /// Report the advisor's view of the shard's sketches.
    AdviseGather {
        /// Reply channel.
        reply: Sender<Vec<SketchCard>>,
    },
    /// Apply one planned advisor round to the shard's sketches.
    AdviseApply {
        /// Actions addressed to this shard's templates.
        actions: Vec<AdviseAction>,
        /// Lifecycle transitions applied (promotion maintenance errors
        /// propagate to the advising caller).
        reply: Sender<Result<ApplyOutcome>>,
    },
    /// Recapture everything with fresh equi-depth partitions.
    Repartition {
        /// Reply = sketches recaptured.
        reply: Sender<usize>,
    },
    /// Barrier: every earlier message has been fully processed.
    Drain {
        /// Reply channel.
        reply: Sender<()>,
    },
    /// Park the worker until `resume` yields (or its sender drops).
    Pause {
        /// Acked once parked.
        ack: Sender<()>,
        /// Unparks the worker.
        resume: Receiver<()>,
    },
    /// Exit the worker loop.
    Stop,
}

/// One shard worker (runs on its own thread, serves shard `id`).
pub(crate) struct ShardWorker {
    id: usize,
    db: Arc<RwLock<Database>>,
    rx: Receiver<ShardMsg>,
    config: ImpConfig,
    board: Arc<SnapshotBoard>,
    metrics: Arc<SchedMetrics>,
    shared: Arc<SchedShared>,
    /// Shared workload tracker (maintenance costs recorded worker-side).
    tracker: Arc<WorkloadTracker>,
    /// Observability hub (spans, latency histograms, probe events).
    obs: Arc<Obs>,
}

impl ShardWorker {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        id: usize,
        db: Arc<RwLock<Database>>,
        rx: Receiver<ShardMsg>,
        config: ImpConfig,
        board: Arc<SnapshotBoard>,
        metrics: Arc<SchedMetrics>,
        shared: Arc<SchedShared>,
        tracker: Arc<WorkloadTracker>,
        obs: Arc<Obs>,
    ) -> ShardWorker {
        ShardWorker {
            id,
            db,
            rx,
            config,
            board,
            metrics,
            shared,
            tracker,
            obs,
        }
    }

    /// The worker loop: controls → own claims → steals → idle block.
    pub(crate) fn run(mut self) {
        loop {
            // Liveness heartbeat: the health watchdogs compare this gauge
            // across ticks — frozen while the inbox is non-empty means
            // this worker is wedged.
            self.metrics.beat(self.id);
            // Handle every control already queued (each is a barrier).
            let mut stop = false;
            while let Ok(msg) = self.rx.try_recv() {
                if self.handle(msg) {
                    stop = true;
                    break;
                }
            }
            if stop {
                // Best-effort parity with the channel-delivered era: work
                // queued before Stop is flushed before the thread exits.
                while self.work_on(self.id, false) {}
                break;
            }
            // One unit of maintenance work, own shard first.
            if self.work_once() {
                continue;
            }
            // Idle: block until a nudge/control or the safety net fires.
            match self.rx.recv_timeout(IDLE_WAIT) {
                Ok(msg) => {
                    if self.handle(msg) {
                        while self.work_on(self.id, false) {}
                        break;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
    }

    /// Dispatch one message; `true` = stop. Controls run behind a
    /// barrier flush (staged ingest + own inbox), mirroring the PR 4
    /// rule that a control observes the settled store.
    fn handle(&mut self, msg: ShardMsg) -> bool {
        match msg {
            ShardMsg::Wake => false,
            ShardMsg::Stop => true,
            control => {
                self.barrier_flush();
                self.handle_control(control);
                false
            }
        }
    }

    /// Flush everything routed (or staged) before a control was sent:
    /// drain the staging queue, then claim from this shard's own inbox
    /// until it is empty. Holding the state lock between claims is not
    /// needed — "inbox empty" is checked after the staging drain's
    /// pushes have all landed (one router hold), and any batch a thief
    /// claimed concurrently is fully processed before our next claim can
    /// take the state lock.
    fn barrier_flush(&self) {
        self.shared.ingest(&self.db, None);
        while self.work_on(self.id, false) {}
    }

    /// One unit of work: staged ingest, then a claim from the own inbox,
    /// then (with stealing on) a claim from another shard — preferring
    /// the victim with the deepest inbox backlog (the queue-depth gauges
    /// of [`crate::SchedMetrics`]), falling back to a round-robin sweep
    /// when the gauge read was stale or every gauge is zero. Returns
    /// `false` when there was nothing to do anywhere.
    fn work_once(&mut self) -> bool {
        if !self.shared.staging_is_empty() {
            self.shared.ingest(&self.db, None);
        }
        if self.work_on(self.id, false) {
            return true;
        }
        if self.config.work_stealing {
            if let Some(victim) = self.metrics.deepest_backlog(self.id) {
                if self.work_on(victim, true) {
                    return true;
                }
            }
            let shards = self.shared.slots.len();
            for offset in 1..shards {
                let victim = (self.id + offset) % shards;
                if self.work_on(victim, true) {
                    return true;
                }
            }
        }
        false
    }

    /// Claim and process one coalesced batch group from `shard`'s inbox.
    /// Blocks on the shard's state lock: under contention the lock
    /// serializes claims, so owner and thieves interleave whole claims
    /// in inbox order. Returns `false` when the inbox was empty.
    fn work_on(&self, shard: usize, stolen: bool) -> bool {
        if !self.shared.has_work(shard) {
            return false;
        }
        let _span = self.obs.span("shard_claim");
        let slot = &self.shared.slots[shard];
        let mut state = slot.state.lock();
        let Some(claim) = self.shared.claim(shard, self.config.coalesce_budget) else {
            return false; // someone else claimed it first
        };
        if stolen {
            self.metrics.stole_from(shard, claim.batches);
        }
        self.obs.flight().record(if stolen {
            crate::obs::FlightEvent::Stolen {
                shard: shard as u64,
                worker: self.id as u64,
                batches: claim.batches,
            }
        } else {
            crate::obs::FlightEvent::Claimed {
                shard: shard as u64,
                worker: self.id as u64,
                batches: claim.batches,
            }
        });
        self.obs.emit(|| ObsEvent::ShardClaim {
            shard,
            worker: self.id,
            stolen,
            batches: claim.batches,
        });
        {
            let db = self.db.read();
            run_claim(
                &mut state,
                &claim.routed,
                &db,
                &self.config,
                &self.metrics,
                &self.tracker,
                &self.obs,
            );
        }
        publish(shard, &mut state, &self.board, &self.obs);
        true
    }

    fn handle_control(&mut self, msg: ShardMsg) {
        match msg {
            ShardMsg::Wake | ShardMsg::Stop => unreachable!("not a control message"),
            ShardMsg::AddSketch {
                template,
                sketch,
                reply,
            } => {
                let mut state = self.shared.slots[self.id].state.lock();
                if let Some(entries) = state.store.get_mut(&template) {
                    if entries.len() >= MAX_SKETCHES_PER_TEMPLATE {
                        let old = entries.remove(0); // evict the oldest candidate
                        self.tracker
                            .forget(&SketchKey::new(template.text(), old.sql));
                    }
                }
                state.store.entry(template).or_default().push(*sketch);
                publish(self.id, &mut state, &self.board, &self.obs);
                let _ = reply.send(());
            }
            ShardMsg::MaintainSketch {
                template,
                plan,
                reply,
            } => {
                let mut state = self.shared.slots[self.id].state.lock();
                let result = self.maintain_one(&mut state, &template, &plan);
                if matches!(result, Ok(Some(_))) {
                    publish(self.id, &mut state, &self.board, &self.obs);
                }
                let _ = reply.send(result);
            }
            ShardMsg::MaintainStale { reply } => {
                let mut state = self.shared.slots[self.id].state.lock();
                let (reports, error) = self.maintain_stale(&mut state);
                if !reports.is_empty() {
                    publish(self.id, &mut state, &self.board, &self.obs);
                }
                match reply {
                    Some(reply) => {
                        let _ = reply.send((reports, error));
                    }
                    None => {
                        // Fire-and-forget kick: surface the error through
                        // the next inspection instead.
                        if let Some(e) = error {
                            state.last_error = Some(e.to_string());
                        }
                    }
                }
            }
            ShardMsg::Inspect { reply } => {
                let mut state = self.shared.slots[self.id].state.lock();
                let _ = reply.send(self.inspect(&mut state));
            }
            ShardMsg::Evict { template, reply } => {
                let mut state = self.shared.slots[self.id].state.lock();
                let mut freed = 0usize;
                let targeted: Box<dyn Iterator<Item = &mut StoredSketch>> = match &template {
                    Some(t) => match state.store.get_mut(t) {
                        Some(entries) => Box::new(entries.iter_mut()),
                        None => Box::new(std::iter::empty()),
                    },
                    None => Box::new(state.store.values_mut().flatten()),
                };
                for entry in targeted {
                    freed += crate::middleware::evict_stored(entry);
                }
                let _ = reply.send(freed);
            }
            ShardMsg::FlushPools { reply } => {
                let mut state = self.shared.slots[self.id].state.lock();
                let mut flushed = 0usize;
                for entry in state.store.values_mut().flatten() {
                    entry.maintainer.flush_pool_caches();
                    flushed += 1;
                }
                let _ = reply.send(flushed);
            }
            ShardMsg::AdviseGather { reply } => {
                let state = self.shared.slots[self.id].state.lock();
                let cards = state
                    .store
                    .iter()
                    .flat_map(|(template, entries)| {
                        entries
                            .iter()
                            .map(|e| crate::middleware::advisor_card(template, e))
                    })
                    .collect();
                let _ = reply.send(cards);
            }
            ShardMsg::AdviseApply { actions, reply } => {
                let mut state = self.shared.slots[self.id].state.lock();
                let result = {
                    let db = self.db.read();
                    crate::advisor::autopilot::apply_to_store(
                        &mut state.store,
                        &db,
                        &self.config,
                        &self.tracker,
                        &actions,
                    )
                };
                // Drops and promotions change published counts/bits.
                publish(self.id, &mut state, &self.board, &self.obs);
                let _ = reply.send(result);
            }
            ShardMsg::Repartition { reply } => {
                let mut state = self.shared.slots[self.id].state.lock();
                let _ = reply.send(self.repartition(&mut state));
            }
            ShardMsg::Drain { reply } => {
                let _ = reply.send(());
            }
            ShardMsg::Pause { ack, resume } => {
                let _ = ack.send(());
                let _ = resume.recv(); // parked until resumed (or dropped)
            }
        }
    }

    /// Bring the subsuming candidate current via the direct fetching path
    /// (any still-queued routed batches become version-filtered no-ops).
    /// `Ok(None)` = no candidate subsumes the plan; errors propagate to
    /// the requesting caller, mirroring the in-line backend.
    fn maintain_one(
        &self,
        state: &mut ShardState,
        template: &QueryTemplate,
        plan: &LogicalPlan,
    ) -> Result<Option<MaintainReply>> {
        let Some(entries) = state.store.get_mut(template) else {
            return Ok(None);
        };
        let Some(entry) = entries
            .iter_mut()
            .find(|e| crate::middleware::plan_subsumes(&e.plan, plan))
        else {
            return Ok(None);
        };
        let db = self.db.read();
        let _span = self.obs.span("maintain_on_demand");
        let from_version = entry.maintainer.version();
        let report =
            crate::middleware::maintain_entry(entry, &db, self.config.retain_sketch_versions)?;
        self.metrics.maintain_runs.inc();
        self.obs.maintain_observed_spanned(
            template.text(),
            report.duration.as_nanos() as u64,
            report.advisor_cost().delta_rows,
            report.recaptured,
            from_version,
            entry.maintainer.version(),
        );
        self.tracker.record_maintenance(
            SketchKey::new(template.text(), entry.sql.clone()),
            report.advisor_cost(),
        );
        Ok(Some(MaintainReply {
            report: Box::new(report),
            sketch: entry.maintainer.sketch().clone(),
        }))
    }

    /// Maintain every stale [`Lifecycle::Maintained`] sketch (demoted
    /// ones wait for an on-demand query), continuing past failures (other
    /// shards keep working either way); the first error rides along.
    fn maintain_stale(
        &self,
        state: &mut ShardState,
    ) -> (Vec<MaintReport>, Option<crate::CoreError>) {
        let db = self.db.read();
        let mut reports = Vec::new();
        let mut first_error = None;
        for (template, entries) in state.store.iter_mut() {
            for entry in entries.iter_mut() {
                if entry.lifecycle != Lifecycle::Maintained || !entry.maintainer.is_stale(&db) {
                    continue;
                }
                let _span = self.obs.span("maintain_stale");
                let from_version = entry.maintainer.version();
                match crate::middleware::maintain_entry(
                    entry,
                    &db,
                    self.config.retain_sketch_versions,
                ) {
                    Ok(report) => {
                        self.metrics.maintain_runs.inc();
                        self.obs.maintain_observed_spanned(
                            template.text(),
                            report.duration.as_nanos() as u64,
                            report.advisor_cost().delta_rows,
                            report.recaptured,
                            from_version,
                            entry.maintainer.version(),
                        );
                        self.tracker.record_maintenance(
                            SketchKey::new(template.text(), entry.sql.clone()),
                            report.advisor_cost(),
                        );
                        reports.push(report);
                    }
                    Err(e) => {
                        if first_error.is_none() {
                            first_error = Some(e);
                        } else {
                            state.last_error = Some(e.to_string());
                        }
                    }
                }
            }
        }
        (reports, first_error)
    }

    fn inspect(&self, state: &mut ShardState) -> ShardReport {
        let db = self.db.read();
        let mut summaries = Vec::new();
        let mut states = Vec::new();
        let mut heap = 0usize;
        let mut min_version: Option<u64> = None;
        let mut table_versions: FxHashMap<String, u64> = FxHashMap::default();
        let mut count = 0usize;
        for (template, entries) in &state.store {
            for e in entries {
                summaries.push(summarize(template, e, &db));
                states.push(SketchStateView {
                    template: template.text().to_string(),
                    sql: e.sql.clone(),
                    version: e.maintainer.version(),
                    bits: e.maintainer.sketch().bits().clone(),
                });
                heap += stored_heap_size(e);
                min_version = Some(
                    min_version.map_or(e.maintainer.version(), |m| m.min(e.maintainer.version())),
                );
                for table in e.maintainer.tables() {
                    let v = table_versions
                        .entry(table.clone())
                        .or_insert_with(|| e.maintainer.version());
                    *v = (*v).min(e.maintainer.version());
                }
                count += 1;
            }
        }
        ShardReport {
            summaries,
            states,
            heap,
            min_version,
            table_versions: table_versions.into_iter().collect(),
            count,
            last_error: state.last_error.clone(),
        }
    }

    /// Recapture every sketch with fresh equi-depth partitions (§7.4) —
    /// the shared [`crate::middleware::repartition_store`] loop, with the
    /// error surfaced through inspection (no synchronous caller to fail).
    fn repartition(&self, state: &mut ShardState) -> usize {
        let recaptured = {
            let db = self.db.read();
            match crate::middleware::repartition_store(&mut state.store, &db, &self.config) {
                Ok(n) => n,
                Err(e) => {
                    state.last_error = Some(e.to_string());
                    0
                }
            }
        };
        publish(self.id, state, &self.board, &self.obs);
        recaptured
    }
}

/// One maintenance run over a claim's coalesced routed batches. Sketches
/// the advisor demoted below [`Lifecycle::Maintained`] are skipped —
/// they are brought current on demand by the next query that needs
/// them (the delta log keeps their records; vacuum horizons respect
/// every stored sketch's maintained version). Free function so owner and
/// thief run the identical pass.
pub(crate) fn run_claim(
    state: &mut ShardState,
    routed: &FxHashMap<String, Vec<Arc<crate::sched::router::TableDelta>>>,
    db: &Database,
    config: &ImpConfig,
    metrics: &SchedMetrics,
    tracker: &WorkloadTracker,
    obs: &Obs,
) {
    for (template, entries) in state.store.iter_mut() {
        for entry in entries.iter_mut() {
            if entry.lifecycle != Lifecycle::Maintained
                || !entry
                    .maintainer
                    .tables()
                    .iter()
                    .any(|t| routed.contains_key(t))
            {
                continue;
            }
            let _span = trace::span("maintain_routed");
            let from_version = entry.maintainer.version();
            let mut run = || -> Result<MaintReport> {
                restore_if_evicted(entry)?;
                let report = entry.maintainer.maintain_from(db, routed)?;
                retain_version(entry, config.retain_sketch_versions);
                Ok(report)
            };
            match run() {
                Ok(report) => {
                    metrics.maintain_runs.inc();
                    obs.maintain_observed_spanned(
                        template.text(),
                        report.duration.as_nanos() as u64,
                        report.advisor_cost().delta_rows,
                        report.recaptured,
                        from_version,
                        entry.maintainer.version(),
                    );
                    tracker.record_maintenance(
                        SketchKey::new(template.text(), entry.sql.clone()),
                        report.advisor_cost(),
                    );
                }
                Err(e) => state.last_error = Some(e.to_string()),
            }
        }
    }
}

/// Publish `shard`'s current sketches as an immutable snapshot.
/// The plan/SQL/tables of each entry are `Arc`-wrapped once and
/// cached — per flush only the sketch bits are cloned. Free function so
/// a thief can publish the victim's shard after a stolen claim.
pub(crate) fn publish(shard: usize, state: &mut ShardState, board: &SnapshotBoard, obs: &Obs) {
    let _span = obs.span("snapshot_publish");
    let sketches: Vec<PublishedSketch> = state
        .store
        .iter_mut()
        .flat_map(|(template, entries)| {
            entries.iter_mut().map(|e| {
                if e.published_meta.is_none() {
                    e.published_meta = Some(PublishedMeta {
                        sql: Arc::from(e.sql.as_str()),
                        plan: Arc::new(e.plan.clone()),
                        tables: e.maintainer.tables().to_vec().into(),
                    });
                }
                let meta = e.published_meta.as_ref().expect("just filled");
                PublishedSketch {
                    template: template.clone(),
                    sql: Arc::clone(&meta.sql),
                    plan: Arc::clone(&meta.plan),
                    tables: Arc::clone(&meta.tables),
                    sketch: Arc::new(e.maintainer.sketch().clone()),
                    version: e.maintainer.version(),
                    lifecycle: e.lifecycle,
                    state_bytes: stored_heap_size(e),
                }
            })
        })
        .collect();
    let count = sketches.len();
    obs.emit(|| ObsEvent::SnapshotPublish {
        shard,
        sketches: count,
    });
    let epoch = board.publish(shard, sketches);
    obs.flight().record(crate::obs::FlightEvent::Published {
        shard: shard as u64,
        sketches: count as u64,
        epoch,
    });
}
