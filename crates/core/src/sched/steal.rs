//! Shared shard inboxes, the async-ingest staging queue, and work
//! stealing.
//!
//! PR 4's scheduler delivered routed deltas through each worker's message
//! channel, so a batch was pinned to its shard's thread: one hot shard
//! under a skewed stream kept one worker saturated while the rest idled.
//! This module moves delta delivery into *shared* per-shard state:
//!
//! * **[`ShardSlot`]** — per shard, a FIFO `inbox` of routed
//!   [`TableDelta`] batches plus the lockable [`ShardState`] (the sketch
//!   store). Whoever holds the state lock may *claim* a coalesced prefix
//!   of the inbox and run maintenance — the owning worker usually, but
//!   under load **any idle worker** (a steal). Claims are serialized by
//!   the state lock and always take a version-ordered whole-batch prefix,
//!   so however ownership of a claim moves between threads, every sketch
//!   consumes its delta stream in exactly the in-line order — the
//!   split-invariant arithmetic keeps the bits byte-identical (the
//!   `steal_differential` suite proves it).
//! * **Async ingest** — [`SchedShared::stage`] appends the updated
//!   table's name to a bounded staging queue and returns immediately:
//!   the writer no longer pays for log collection and fan-out. Workers
//!   (and control barriers) drain the staging queue through
//!   [`SchedShared::ingest`], which collects and fans out **under one
//!   router hold** so inbox pushes happen in global collect order — the
//!   ordering claims rely on. A full staging queue falls back to inline
//!   ingestion on the writer's thread (counted as a backpressure stall),
//!   which keeps the update path live even while every worker is paused.
//!
//! Lock order (no cycles): `router → staging/inbox` on the ingest side,
//! `state → inbox` on the claim side, `state → db.read` while
//! maintaining. No thread ever holds two different shards' state locks.

use crate::metrics::SchedMetrics;
use crate::middleware::StoredSketch;
use crate::obs::{trace, Obs, ObsEvent};
use crate::sched::router::{DeltaRouter, TableDelta};
use crate::sched::shard::ShardMsg;
use crossbeam::channel::Sender;
use imp_engine::Database;
use imp_sql::QueryTemplate;
use imp_storage::FxHashMap;
use parking_lot::{Mutex, RwLock};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// One shard's lockable sketch store. Control messages and claims both
/// go through the [`ShardSlot::state`] lock, so a thief never races the
/// owner's store mutations.
pub(crate) struct ShardState {
    /// Template → stored candidates (the shard's slice of the store).
    pub(crate) store: FxHashMap<QueryTemplate, Vec<StoredSketch>>,
    /// Sticky last maintenance error (surfaced through inspection).
    pub(crate) last_error: Option<String>,
}

/// One shard: the routed-delta inbox plus the stealable state.
pub(crate) struct ShardSlot {
    /// FIFO of routed batches, in global collect order (pushes happen
    /// under the router lock). `inbox empty && state lock held` ⇒ no
    /// batch is in flight for this shard.
    inbox: Mutex<VecDeque<Arc<TableDelta>>>,
    /// The shard's store; holding it grants the right to claim.
    pub(crate) state: Mutex<ShardState>,
}

/// A claimed, coalesced unit of maintenance work: a whole-batch FIFO
/// prefix of one shard's inbox, grouped per table for a single
/// [`crate::maintain::SketchMaintainer::maintain_from`] pass.
pub(crate) struct Claim {
    /// Table → coalesced batches, in arrival (version) order.
    pub(crate) routed: FxHashMap<String, Vec<Arc<TableDelta>>>,
    /// Number of whole batches claimed.
    pub(crate) batches: u64,
}

/// In-progress claim accumulation (see [`SchedShared::claim`]).
struct ClaimBuilder {
    routed: FxHashMap<String, Vec<Arc<TableDelta>>>,
    rows: FxHashMap<String, usize>,
    batches: u64,
    max_to: u64,
}

impl ClaimBuilder {
    /// Add one batch; returns true when its table's rows reach `budget`.
    fn take(&mut self, batch: Arc<TableDelta>, budget: usize) -> bool {
        self.batches += 1;
        self.max_to = self.max_to.max(batch.to_version);
        let table_rows = self.rows.entry(batch.table.clone()).or_insert(0);
        *table_rows += batch.entries.len();
        let budget_hit = *table_rows >= budget.max(1);
        self.routed
            .entry(batch.table.clone())
            .or_default()
            .push(batch);
        budget_hit
    }
}

/// State shared by the scheduler facade and every shard worker.
pub(crate) struct SchedShared {
    /// One slot per shard.
    pub(crate) slots: Vec<ShardSlot>,
    /// The single ingestion point (log collection + interning).
    router: Mutex<DeltaRouter>,
    /// Async-ingest staging queue: table names awaiting collection.
    staging: Mutex<VecDeque<String>>,
    /// Staging capacity; `0` disables async ingest (inline routing).
    staging_cap: usize,
    /// Shared scheduler counters.
    metrics: Arc<SchedMetrics>,
    /// Observability hub (spans + probe events on the ingest path).
    obs: Arc<Obs>,
    /// Control-channel senders, for wake nudges (set once after spawn).
    wakers: OnceLock<Vec<Sender<ShardMsg>>>,
    /// Round-robin cursor for [`SchedShared::wake_any`].
    next_wake: AtomicUsize,
}

impl SchedShared {
    pub(crate) fn new(
        workers: usize,
        staging_cap: usize,
        metrics: Arc<SchedMetrics>,
        obs: Arc<Obs>,
    ) -> SchedShared {
        SchedShared {
            slots: (0..workers)
                .map(|_| ShardSlot {
                    inbox: Mutex::new(VecDeque::new()),
                    state: Mutex::new(ShardState {
                        store: FxHashMap::default(),
                        last_error: None,
                    }),
                })
                .collect(),
            router: Mutex::new(DeltaRouter::new()),
            staging: Mutex::new(VecDeque::new()),
            staging_cap,
            metrics,
            obs,
            wakers: OnceLock::new(),
            next_wake: AtomicUsize::new(0),
        }
    }

    /// Install the control-channel senders (once, right after spawn).
    pub(crate) fn set_wakers(&self, wakers: Vec<Sender<ShardMsg>>) {
        let _ = self.wakers.set(wakers);
    }

    /// Register `shard`'s interest in `tables` with the router.
    pub(crate) fn register(&self, db: &Database, tables: &[String], shard: usize) {
        self.router.lock().register(db, tables, shard);
    }

    /// Stage `table` for asynchronous ingestion. Returns `false` when the
    /// staging queue is full (or async ingest is disabled) — the caller
    /// must then ingest inline.
    pub(crate) fn stage(&self, table: &str) -> bool {
        if self.staging_cap == 0 {
            return false;
        }
        let mut staging = self.staging.lock();
        if staging.len() >= self.staging_cap {
            return false;
        }
        staging.push_back(table.to_string());
        self.metrics.staged_updates.inc();
        true
    }

    /// True iff async ingest is enabled (nonzero staging capacity).
    pub(crate) fn async_enabled(&self) -> bool {
        self.staging_cap > 0
    }

    /// True iff nothing is staged (cheap idle check).
    pub(crate) fn staging_is_empty(&self) -> bool {
        self.staging.lock().is_empty()
    }

    /// Drain the staging queue (and collect `extra`, when given) under
    /// **one** router hold: every staged table is collected from the log
    /// and fanned out before the hold ends, so "staging empty" is only
    /// observable once all its pushes have landed — the property control
    /// barriers rely on.
    ///
    /// Deferred collection can produce batches whose version ranges
    /// *interleave*: `collect(hot)` may merge versions 1 and 3 into one
    /// batch while version 2 belongs to a still-staged table. Join
    /// maintenance is only split-invariant across version-contiguous
    /// runs, so interleaved batches must never land in different claims.
    /// Two rules enforce that: all of a drain's batches for one shard
    /// are pushed under a **single inbox hold** (a concurrent claim sees
    /// the whole group or none of it), and [`SchedShared::claim`] extends
    /// to version closure over the inbox. Staged-but-uncollected updates
    /// cannot interleave with a drain's batches: the staging queue is
    /// drained to empty under the router hold, and the middleware's
    /// single-writer update path stages each commit before the next one
    /// can produce a higher version.
    pub(crate) fn ingest(&self, db: &RwLock<Database>, extra: Option<&str>) {
        let _span = self.obs.span("router_ingest");
        let mut router = self.router.lock();
        let db = db.read();
        let mut collected: Vec<(Arc<TableDelta>, Vec<usize>)> = Vec::new();
        loop {
            let Some(table) = self.staging.lock().pop_front() else {
                break;
            };
            if let Some(c) = self.collect(&mut router, &db, &table) {
                collected.push(c);
            }
        }
        if let Some(table) = extra {
            if let Some(c) = self.collect(&mut router, &db, table) {
                collected.push(c);
            }
        }
        if collected.is_empty() {
            return;
        }
        let _fanout = trace::span("fanout");
        let mut per_shard: Vec<Vec<Arc<TableDelta>>> =
            (0..self.slots.len()).map(|_| Vec::new()).collect();
        for (delta, shards) in collected {
            for shard in shards {
                self.metrics.fanout_messages.inc();
                per_shard[shard].push(Arc::clone(&delta));
            }
        }
        for (shard, batches) in per_shard.into_iter().enumerate() {
            if batches.is_empty() {
                continue;
            }
            self.obs.emit(|| ObsEvent::FanOut {
                shard,
                batches: batches.len(),
            });
            self.inbox_push_group(shard, batches);
            self.wake(shard);
        }
    }

    /// Collect `table`'s unrouted log suffix (caller holds the router).
    fn collect(
        &self,
        router: &mut DeltaRouter,
        db: &Database,
        table: &str,
    ) -> Option<(Arc<TableDelta>, Vec<usize>)> {
        let (delta, shards) = router.collect(db, table)?;
        self.metrics.routed_batches.inc();
        self.metrics.routed_rows.add(delta.entries.len() as u64);
        self.obs.flight().record(crate::obs::FlightEvent::Routed {
            table: crate::obs::flight::fid(&delta.table),
            rows: delta.entries.len() as u64,
            shards: shards.len() as u64,
        });
        self.obs.emit(|| ObsEvent::RouterIngest {
            table: delta.table.clone(),
            rows: delta.entries.len() as u64,
            shards: shards.len(),
        });
        Some((delta, shards))
    }

    /// Push one drain's routed batches into `shard`'s inbox under a
    /// single hold (claims must see the group whole — see
    /// [`SchedShared::ingest`]), counting coalescing (a same-table batch
    /// already queued will fold into one run).
    fn inbox_push_group(&self, shard: usize, batches: Vec<Arc<TableDelta>>) {
        let mut inbox = self.slots[shard].inbox.lock();
        for batch in batches {
            if inbox.iter().any(|b| b.table == batch.table) {
                self.metrics.coalesced_batches.inc();
            }
            inbox.push_back(batch);
            self.metrics.enqueued(shard);
        }
    }

    /// True iff `shard`'s inbox has queued batches (lock-cheap peek).
    pub(crate) fn has_work(&self, shard: usize) -> bool {
        !self.slots[shard].inbox.lock().is_empty()
    }

    /// Claim a whole-batch FIFO prefix of `shard`'s inbox, stopping once
    /// any table's claimed rows reach `budget` (that batch is included —
    /// matching the PR 4 gather rule). Same-table batches group into one
    /// maintenance run. **Caller must hold `shard`'s state lock.**
    ///
    /// After the budget stop the claim extends to **version closure**:
    /// while the next queued batch holds versions below the highest
    /// version already claimed, it is pulled in too. Deferred collection
    /// may merge a table's versions 1 and 3 into one batch while another
    /// table's version 2 sits behind it (see [`SchedShared::ingest`]);
    /// splitting those across claims would break the three-term join
    /// rule's telescoping (cross-run delta products are never produced).
    /// Closure over the front suffices because drain groups land under
    /// one inbox hold and interleaving only occurs within a group.
    pub(crate) fn claim(&self, shard: usize, budget: usize) -> Option<Claim> {
        let mut inbox = self.slots[shard].inbox.lock();
        if inbox.is_empty() {
            return None;
        }
        let mut claim = ClaimBuilder {
            routed: FxHashMap::default(),
            rows: FxHashMap::default(),
            batches: 0,
            max_to: 0,
        };
        while let Some(batch) = inbox.pop_front() {
            self.metrics.dequeued(shard);
            if claim.take(batch, budget) {
                break;
            }
        }
        while inbox
            .front()
            .is_some_and(|front| front.from_version < claim.max_to)
        {
            let batch = inbox.pop_front().expect("front was Some");
            self.metrics.dequeued(shard);
            claim.take(batch, budget);
        }
        Some(Claim {
            routed: claim.routed,
            batches: claim.batches,
        })
    }

    /// Nudge `shard`'s worker (edge-triggered; dropped when its control
    /// queue is already full — it will see the work anyway).
    pub(crate) fn wake(&self, shard: usize) {
        if let Some(wakers) = self.wakers.get() {
            let _ = wakers[shard].try_send(ShardMsg::Wake);
        }
    }

    /// Nudge one worker, round-robin (staged ingest has no target shard
    /// until collection resolves interest).
    pub(crate) fn wake_any(&self) {
        if self.slots.is_empty() {
            return;
        }
        let next = self.next_wake.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        self.wake(next);
    }
}
