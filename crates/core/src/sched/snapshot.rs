//! Versioned published sketch snapshots.
//!
//! Shard workers own the live [`crate::middleware::StoredSketch`]s; the
//! USE/rewrite path of [`crate::middleware::Imp::execute`] must read
//! fresh sketches *without* blocking maintenance. After every state
//! change a worker publishes an immutable [`ShardSnapshot`] of its shard
//! — `Arc`-shared plans and sketch bits, stamped with a monotonically
//! increasing board epoch — into its slot of the [`SnapshotBoard`].
//! Readers lock a slot only long enough to clone the `Arc`; writers only
//! long enough to swap it.

use crate::advisor::Lifecycle;
use imp_sketch::SketchSet;
use imp_sql::{LogicalPlan, QueryTemplate};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One published sketch: everything the query path needs to decide reuse
/// and rewrite, shared by `Arc` (cloning the struct copies no sketch or
/// plan data).
#[derive(Debug, Clone)]
pub struct PublishedSketch {
    /// Store key.
    pub template: QueryTemplate,
    /// Original SQL of the capturing query.
    pub sql: Arc<str>,
    /// Resolved plan (subsumption checks).
    pub plan: Arc<LogicalPlan>,
    /// Base tables (staleness checks).
    pub tables: Arc<[String]>,
    /// The sketch, valid as of `version`.
    pub sketch: Arc<SketchSet>,
    /// Database version the sketch is valid for.
    pub version: u64,
    /// Advisor lifecycle rung at publication (introspection: `/sketches`).
    pub lifecycle: Lifecycle,
    /// Heap bytes of the stored sketch state at publication.
    pub state_bytes: usize,
}

/// Immutable snapshot of one shard's sketches.
#[derive(Debug, Default)]
pub struct ShardSnapshot {
    /// Board epoch at publication (0 = never published).
    pub epoch: u64,
    /// The shard's sketches at that epoch.
    pub sketches: Vec<PublishedSketch>,
}

/// One slot per shard, swapped atomically under a short mutex.
#[derive(Debug)]
pub struct SnapshotBoard {
    slots: Vec<Mutex<Arc<ShardSnapshot>>>,
    epoch: AtomicU64,
}

impl SnapshotBoard {
    /// Empty board for `shards` slots.
    pub fn new(shards: usize) -> SnapshotBoard {
        SnapshotBoard {
            slots: (0..shards)
                .map(|_| Mutex::new(Arc::new(ShardSnapshot::default())))
                .collect(),
            epoch: AtomicU64::new(0),
        }
    }

    /// Number of slots.
    pub fn shards(&self) -> usize {
        self.slots.len()
    }

    /// Publish `sketches` as `shard`'s new snapshot; returns its epoch.
    pub fn publish(&self, shard: usize, sketches: Vec<PublishedSketch>) -> u64 {
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        *self.slots[shard].lock() = Arc::new(ShardSnapshot { epoch, sketches });
        epoch
    }

    /// `shard`'s current snapshot (O(1): clones the `Arc`).
    pub fn read(&self, shard: usize) -> Arc<ShardSnapshot> {
        Arc::clone(&self.slots[shard].lock())
    }

    /// Highest epoch published so far.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_bumps_epoch_and_swaps_slot() {
        let board = SnapshotBoard::new(2);
        assert_eq!(board.epoch(), 0);
        assert_eq!(board.read(0).epoch, 0);
        let e1 = board.publish(0, Vec::new());
        let e2 = board.publish(1, Vec::new());
        assert!(e1 < e2);
        assert_eq!(board.read(0).epoch, e1);
        assert_eq!(board.read(1).epoch, e2);
        assert_eq!(board.epoch(), e2);
    }
}
