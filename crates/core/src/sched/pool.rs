//! Worker-pool lifecycle: spawn, message plumbing, pause/resume, join.

use crate::advisor::WorkloadTracker;
use crate::metrics::SchedMetrics;
use crate::middleware::ImpConfig;
use crate::sched::shard::{ShardMsg, ShardWorker};
use crate::sched::snapshot::SnapshotBoard;
use crossbeam::channel::{bounded, Sender};
use imp_engine::Database;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Capacity of each shard's message queue. A full queue blocks the
/// router's send — backpressure onto the update path (counted in
/// [`SchedMetrics::backpressure_stalls`]).
pub const SHARD_QUEUE_CAP: usize = 256;

struct ShardHandle {
    tx: Sender<ShardMsg>,
    handle: Option<JoinHandle<()>>,
}

/// `N` worker threads, each owning a disjoint shard of the sketch store.
pub struct ShardPool {
    shards: Vec<ShardHandle>,
    metrics: Arc<SchedMetrics>,
    /// Resume senders of outstanding pauses, so dropping the pool while a
    /// [`PausedShards`] guard is still alive unparks the workers instead
    /// of deadlocking the join (sends to already-resumed workers are
    /// harmless no-ops).
    paused: Mutex<Vec<Sender<()>>>,
}

impl ShardPool {
    /// Spawn `workers` shard threads sharing `db`.
    pub(crate) fn spawn(
        workers: usize,
        db: &Arc<RwLock<Database>>,
        config: &ImpConfig,
        board: &Arc<SnapshotBoard>,
        metrics: &Arc<SchedMetrics>,
        tracker: &Arc<WorkloadTracker>,
    ) -> ShardPool {
        let shards = (0..workers)
            .map(|id| {
                let (tx, rx) = bounded::<ShardMsg>(SHARD_QUEUE_CAP);
                let worker = ShardWorker::new(
                    id,
                    Arc::clone(db),
                    rx,
                    config.clone(),
                    Arc::clone(board),
                    Arc::clone(metrics),
                    Arc::clone(tracker),
                );
                let handle = std::thread::Builder::new()
                    .name(format!("imp-shard-{id}"))
                    .spawn(move || worker.run())
                    .expect("spawn shard worker");
                ShardHandle {
                    tx,
                    handle: Some(handle),
                }
            })
            .collect();
        ShardPool {
            shards,
            metrics: Arc::clone(metrics),
            paused: Mutex::new(Vec::new()),
        }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True iff the pool has no shards (never: spawn requires ≥ 1).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Send to one shard, blocking when its queue is full (backpressure;
    /// the stall is counted). The depth gauge is bumped *before* the
    /// send, so it counts queued plus in-flight blocked messages — it
    /// must not be incremented after, or the worker could dequeue first
    /// and underflow the gauge.
    pub(crate) fn send(&self, shard: usize, msg: ShardMsg) {
        self.metrics.enqueued(shard);
        match self.shards[shard].tx.try_send(msg) {
            Ok(()) => {}
            Err(crossbeam::channel::TrySendError::Full(msg)) => {
                self.metrics
                    .backpressure_stalls
                    .fetch_add(1, Ordering::Relaxed);
                let _ = self.shards[shard].tx.send(msg);
            }
            Err(crossbeam::channel::TrySendError::Disconnected(_)) => {
                self.metrics.dequeued(shard); // worker gone (shutdown race)
            }
        }
    }

    /// Park every worker (acked), returning the resume handles.
    pub(crate) fn pause(&self) -> PausedShards {
        let mut resumes = Vec::with_capacity(self.shards.len());
        let mut acks = Vec::with_capacity(self.shards.len());
        for shard in 0..self.shards.len() {
            let (ack_tx, ack_rx) = bounded::<()>(1);
            let (resume_tx, resume_rx) = bounded::<()>(1);
            self.send(
                shard,
                ShardMsg::Pause {
                    ack: ack_tx,
                    resume: resume_rx,
                },
            );
            acks.push(ack_rx);
            resumes.push(resume_tx);
        }
        for ack in acks {
            let _ = ack.recv();
        }
        self.paused.lock().extend(resumes.iter().cloned());
        PausedShards { resumes }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        // Unpark workers whose PausedShards guard is still alive — they
        // must drain to their Stop message for the join to return.
        for tx in self.paused.lock().drain(..) {
            let _ = tx.send(());
        }
        for shard in 0..self.shards.len() {
            self.send(shard, ShardMsg::Stop);
        }
        for s in &mut self.shards {
            if let Some(handle) = s.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

/// Guard returned by [`crate::sched::Scheduler::pause`]: every shard
/// worker is parked (their queues keep filling — the deterministic way to
/// observe coalescing). Dropping the guard resumes them.
pub struct PausedShards {
    resumes: Vec<Sender<()>>,
}

impl PausedShards {
    /// Unpark all workers.
    pub fn resume(self) {
        drop(self); // Drop impl sends the resumes
    }
}

impl Drop for PausedShards {
    fn drop(&mut self) {
        for tx in &self.resumes {
            let _ = tx.send(());
        }
    }
}
