//! Worker-pool lifecycle: spawn, control plumbing, pause/resume, join.
//!
//! Routed deltas no longer travel through these channels — they live in
//! the shared per-shard inboxes (`crate::sched::steal`). The channels
//! carry only control messages and edge-triggered wake nudges, so they
//! never need to block the update path: `SHARD_QUEUE_CAP` merely bounds
//! how many controls can be queued ahead of a worker.

use crate::advisor::WorkloadTracker;
use crate::metrics::SchedMetrics;
use crate::middleware::ImpConfig;
use crate::obs::Obs;
use crate::sched::shard::{ShardMsg, ShardWorker};
use crate::sched::snapshot::SnapshotBoard;
use crate::sched::steal::SchedShared;
use crossbeam::channel::{bounded, Sender};
use imp_engine::Database;
use parking_lot::{Mutex, RwLock};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Capacity of each shard's control queue. Controls are rare and always
/// answered; wake nudges are dropped (not blocked) when the queue is
/// full, so a full queue never stalls ingestion.
pub const SHARD_QUEUE_CAP: usize = 256;

struct ShardHandle {
    tx: Sender<ShardMsg>,
    handle: Option<JoinHandle<()>>,
}

/// `N` worker threads, each serving one shard of the sketch store (and,
/// with work stealing on, helping with any other shard's backlog).
pub struct ShardPool {
    shards: Vec<ShardHandle>,
    /// Resume senders of outstanding pauses, so dropping the pool while a
    /// [`PausedShards`] guard is still alive unparks the workers instead
    /// of deadlocking the join (sends to already-resumed workers are
    /// harmless no-ops).
    paused: Mutex<Vec<Sender<()>>>,
}

impl ShardPool {
    /// Spawn `workers` shard threads sharing `db` and `shared`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn spawn(
        workers: usize,
        db: &Arc<RwLock<Database>>,
        config: &ImpConfig,
        board: &Arc<SnapshotBoard>,
        metrics: &Arc<SchedMetrics>,
        tracker: &Arc<WorkloadTracker>,
        shared: &Arc<SchedShared>,
        obs: &Arc<Obs>,
    ) -> ShardPool {
        let mut txs = Vec::with_capacity(workers);
        let shards = (0..workers)
            .map(|id| {
                let (tx, rx) = bounded::<ShardMsg>(SHARD_QUEUE_CAP);
                txs.push(tx.clone());
                let worker = ShardWorker::new(
                    id,
                    Arc::clone(db),
                    rx,
                    config.clone(),
                    Arc::clone(board),
                    Arc::clone(metrics),
                    Arc::clone(shared),
                    Arc::clone(tracker),
                    Arc::clone(obs),
                );
                let handle = std::thread::Builder::new()
                    .name(format!("imp-shard-{id}"))
                    .spawn(move || worker.run())
                    .expect("spawn shard worker");
                ShardHandle {
                    tx,
                    handle: Some(handle),
                }
            })
            .collect();
        shared.set_wakers(txs);
        ShardPool {
            shards,
            paused: Mutex::new(Vec::new()),
        }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True iff the pool has no shards (never: spawn requires ≥ 1).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Send a control to one shard (blocking; control queues only ever
    /// fill with controls, each of which the worker answers promptly).
    pub(crate) fn send(&self, shard: usize, msg: ShardMsg) {
        let _ = self.shards[shard].tx.send(msg);
    }

    /// Park every worker (acked), returning the resume handles.
    pub(crate) fn pause(&self) -> PausedShards {
        let mut resumes = Vec::with_capacity(self.shards.len());
        let mut acks = Vec::with_capacity(self.shards.len());
        for shard in 0..self.shards.len() {
            let (ack_tx, ack_rx) = bounded::<()>(1);
            let (resume_tx, resume_rx) = bounded::<()>(1);
            self.send(
                shard,
                ShardMsg::Pause {
                    ack: ack_tx,
                    resume: resume_rx,
                },
            );
            acks.push(ack_rx);
            resumes.push(resume_tx);
        }
        for ack in acks {
            let _ = ack.recv();
        }
        self.paused.lock().extend(resumes.iter().cloned());
        PausedShards { resumes }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        // Unpark workers whose PausedShards guard is still alive — they
        // must drain to their Stop message for the join to return.
        for tx in self.paused.lock().drain(..) {
            let _ = tx.send(());
        }
        for shard in 0..self.shards.len() {
            self.send(shard, ShardMsg::Stop);
        }
        for s in &mut self.shards {
            if let Some(handle) = s.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

/// Guard returned by [`crate::sched::Scheduler::pause`]: every shard
/// worker is parked (their inboxes keep filling — the deterministic way
/// to observe coalescing and queue depth). Dropping the guard resumes
/// them.
pub struct PausedShards {
    resumes: Vec<Sender<()>>,
}

impl PausedShards {
    /// Unpark all workers.
    pub fn resume(self) {
        drop(self); // Drop impl sends the resumes
    }
}

impl Drop for PausedShards {
    fn drop(&mut self) {
        for tx in &self.resumes {
            let _ = tx.send(());
        }
    }
}
