//! # `imp_core::sched` — sharded multi-query maintenance scheduling
//!
//! The paper's middleware maintains *many* sketches against one shared
//! update stream. The in-line store serializes that work on whichever
//! thread triggers it; this module scales it out while preserving the
//! in-line semantics bit-for-bit (the differential property the
//! `sched_differential` and `steal_differential` suites prove).
//!
//! ## Flow: staging → router → shared inboxes → workers → snapshots
//!
//! ```text
//!   update ──▶ staging queue ─(worker drains)─▶ DeltaRouter
//!                │ (bounded; full ⇒ inline)        │ one collect per
//!                ▼                                 ▼ table, fan out
//!   query ◀── Imp::execute       ┌─────────┬─────────┬─────────┐
//!              ▲                 │ inbox 0 │ inbox 1 │ inbox N │
//!              │ read            └────┬────┴────┬────┴────┬────┘
//!       SnapshotBoard ◀─ publish ─ worker 0  worker 1  worker N
//!            (versioned)              └──── work stealing ───┘
//! ```
//!
//! * **Async ingest** — [`Scheduler::route`] *stages* the updated table
//!   name on a bounded queue and returns: the writer no longer pays for
//!   log collection or fan-out. Workers drain the staging queue; a full
//!   queue falls back to inline ingestion on the writer's thread
//!   (backpressure, counted in
//!   [`crate::metrics::SchedStats::backpressure_stalls`]).
//! * **[`router::DeltaRouter`]** ingests each table's delta-log suffix
//!   once, as a shared [`router::TableDelta`] (`Arc` rows via the row
//!   interner), pushed only into the inboxes of shards whose sketches
//!   reference the table. Per-record versions make redelivery/overlap
//!   harmless (receivers skip already-consumed versions).
//! * **`steal::SchedShared`** holds the per-shard inboxes and stores.
//!   Each worker drains its own inbox in claimed batches with per-table
//!   **coalescing** (pending batches for one table merge into a single
//!   maintenance run, bounded by
//!   [`crate::middleware::ImpConfig::coalesce_budget`]); an idle worker
//!   **steals** whole claims from loaded shards (serialized by the
//!   victim's state lock, so the result stays byte-identical).
//! * **[`snapshot::SnapshotBoard`]** publishes each shard's sketches as
//!   immutable, epoch-stamped snapshots after every state change, so the
//!   USE/rewrite path reads fresh sketches without ever blocking (or
//!   being blocked by) maintenance. Only a query that *needs* a stale
//!   sketch synchronizes with the owning shard.
//!
//! Maintenance arithmetic is split-invariant (see
//! [`crate::maintain::SketchMaintainer::maintain_from`]): however the
//! update stream is chopped into routed batches, coalesced groups, and
//! stolen claims, sketch bits and maintained versions equal the
//! sequential in-line outcome.

pub mod pool;
pub mod router;
pub mod shard;
pub mod snapshot;
pub(crate) mod steal;

pub use pool::{PausedShards, ShardPool, SHARD_QUEUE_CAP};
pub use router::{DeltaRouter, RoutedEntry, TableDelta};
pub use shard::{MaintainReply, ShardReport};
pub use snapshot::{PublishedSketch, ShardSnapshot, SnapshotBoard};

use crate::advisor::{AdviseAction, ApplyOutcome, SketchCard, WorkloadTracker};
use crate::maintain::MaintReport;
use crate::metrics::{SchedMetrics, SchedStats};
use crate::middleware::{plan_subsumes, ImpConfig, StoredSketch};
use crate::obs::{Obs, ObsEvent};
use crate::sched::shard::ShardMsg;
use crate::sched::steal::SchedShared;
use crossbeam::channel::bounded;
use imp_engine::Database;
use imp_sql::{LogicalPlan, QueryTemplate};
use parking_lot::RwLock;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The scheduler facade: staging + router + shard pool + snapshot board.
pub struct Scheduler {
    pool: ShardPool,
    shared: Arc<SchedShared>,
    board: Arc<SnapshotBoard>,
    metrics: Arc<SchedMetrics>,
    obs: Arc<Obs>,
    db: Arc<RwLock<Database>>,
}

impl Scheduler {
    /// Spawn the scheduler for `config.sched_workers` shards (≥ 1).
    pub(crate) fn new(
        db: Arc<RwLock<Database>>,
        config: &ImpConfig,
        tracker: Arc<WorkloadTracker>,
        obs: Arc<Obs>,
    ) -> Scheduler {
        let workers = config.sched_workers.max(1);
        let board = Arc::new(SnapshotBoard::new(workers));
        let metrics = Arc::new(SchedMetrics::registered(workers, obs.registry()));
        let shared = Arc::new(SchedShared::new(
            workers,
            config.ingest_queue_cap,
            Arc::clone(&metrics),
            Arc::clone(&obs),
        ));
        let pool = ShardPool::spawn(
            workers, &db, config, &board, &metrics, &tracker, &shared, &obs,
        );
        Scheduler {
            pool,
            shared,
            board,
            metrics,
            obs,
            db,
        }
    }

    /// Number of shard workers.
    pub fn workers(&self) -> usize {
        self.pool.len()
    }

    /// The shard owning `template` (stable template-hash partitioning).
    pub fn shard_of(&self, template: &QueryTemplate) -> usize {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        template.hash(&mut hasher);
        (hasher.finish() % self.pool.len() as u64) as usize
    }

    /// Current scheduler counters.
    pub fn stats(&self) -> SchedStats {
        self.metrics.snapshot()
    }

    /// Shared handle to the snapshot board (obsd's `/sketches` reads
    /// published snapshots through this without touching the scheduler).
    pub fn board_handle(&self) -> Arc<SnapshotBoard> {
        Arc::clone(&self.board)
    }

    /// Shared handle to the scheduler counters.
    pub fn metrics_handle(&self) -> Arc<SchedMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Epoch of the latest published snapshot (0 = none yet).
    pub fn snapshot_epoch(&self) -> u64 {
        self.board.epoch()
    }

    /// Number of sketches currently published across all shards.
    /// Snapshots are republished on every count-changing operation, so
    /// this equals the stored count without an inspection barrier.
    pub fn published_count(&self) -> usize {
        (0..self.pool.len())
            .map(|shard| self.board.read(shard).sketches.len())
            .sum()
    }

    /// Note that `table` committed an update. Normally this just stages
    /// the table name for asynchronous ingestion (a worker collects the
    /// delta-log suffix and fans it out); when the staging queue is full
    /// — or async ingest is disabled via
    /// [`ImpConfig::ingest_queue_cap`]` = 0` — the delta is ingested
    /// inline on this thread (backpressure, counted as a stall), which
    /// keeps ingestion live even while every worker is paused.
    pub fn route(&self, table: &str) {
        let _span = self.obs.span("route");
        if self.shared.stage(table) {
            self.obs.flight().record(crate::obs::FlightEvent::Staged {
                table: crate::obs::flight::fid(table),
                queued: 1,
            });
            self.obs.emit(|| ObsEvent::UpdateStaged {
                table: table.to_string(),
                queued: true,
            });
            self.shared.wake_any();
        } else {
            if self.shared.async_enabled() {
                // A full staging queue (not a disabled one) is pressure.
                self.metrics.backpressure_stalls.inc();
            }
            self.obs.flight().record(crate::obs::FlightEvent::Staged {
                table: crate::obs::flight::fid(table),
                queued: 0,
            });
            self.obs.emit(|| ObsEvent::UpdateStaged {
                table: table.to_string(),
                queued: false,
            });
            self.shared.ingest(&self.db, Some(table));
        }
    }

    /// Hand a freshly captured sketch to its owning shard (synchronous:
    /// the sketch is stored and published when this returns, so the next
    /// query sees it).
    pub(crate) fn add_sketch(&self, template: QueryTemplate, sketch: StoredSketch) {
        let shard = self.shard_of(&template);
        {
            let db = self.db.read();
            self.shared.register(&db, sketch.maintainer.tables(), shard);
        }
        let (tx, rx) = bounded(1);
        self.pool.send(
            shard,
            ShardMsg::AddSketch {
                template,
                sketch: Box::new(sketch),
                reply: tx,
            },
        );
        let _ = rx.recv();
    }

    /// The published candidate subsuming `plan`, if any (non-blocking
    /// snapshot read).
    pub fn find_published(
        &self,
        template: &QueryTemplate,
        plan: &LogicalPlan,
    ) -> Option<PublishedSketch> {
        let snapshot = self.board.read(self.shard_of(template));
        snapshot
            .sketches
            .iter()
            .find(|p| p.template == *template && plan_subsumes(&p.plan, plan))
            .cloned()
    }

    /// Ask the owning shard to bring the subsuming candidate fully
    /// current (synchronous; staged and queued routed deltas are
    /// processed first). `Ok(None)` when no stored candidate subsumes the
    /// plan anymore; a worker-side maintenance failure propagates like
    /// the in-line backend's would.
    pub(crate) fn maintain_sketch(
        &self,
        template: &QueryTemplate,
        plan: &LogicalPlan,
    ) -> crate::Result<Option<MaintainReply>> {
        let (tx, rx) = bounded(1);
        self.pool.send(
            self.shard_of(template),
            ShardMsg::MaintainSketch {
                template: template.clone(),
                plan: Box::new(plan.clone()),
                reply: tx,
            },
        );
        rx.recv().unwrap_or(Ok(None))
    }

    /// Scatter one control message to every shard, then gather every
    /// reply (shards process in parallel; replies collect in shard
    /// order). A shard whose worker died is skipped — its reply channel
    /// closes.
    fn broadcast<R>(&self, make: impl Fn(crossbeam::channel::Sender<R>) -> ShardMsg) -> Vec<R> {
        let mut replies = Vec::with_capacity(self.pool.len());
        for shard in 0..self.pool.len() {
            let (tx, rx) = bounded(1);
            self.pool.send(shard, make(tx));
            replies.push(rx);
        }
        replies
            .into_iter()
            .filter_map(|rx| rx.recv().ok())
            .collect()
    }

    /// Synchronously maintain every stale sketch on every shard (shards
    /// work in parallel; reports are collected in shard order). Every
    /// shard completes its sweep; the first error, if any, is returned
    /// after the successful reports are collected.
    pub fn maintain_stale(&self) -> crate::Result<Vec<MaintReport>> {
        let mut reports = Vec::new();
        let mut first_error = None;
        for (shard_reports, error) in
            self.broadcast(|tx| ShardMsg::MaintainStale { reply: Some(tx) })
        {
            reports.extend(shard_reports);
            if first_error.is_none() {
                first_error = error;
            }
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(reports),
        }
    }

    /// Fire-and-forget maintain-stale sweep (background ticks).
    pub fn kick_maintenance(&self) {
        for shard in 0..self.pool.len() {
            self.pool
                .send(shard, ShardMsg::MaintainStale { reply: None });
        }
    }

    /// Barrier: returns once every update routed (or staged) before this
    /// call has been fully processed on every shard. Each worker drains
    /// the staging queue and flushes its own inbox before replying; a
    /// claim stolen mid-flight is finished before the thief releases the
    /// victim's state lock, which every subsequent store access takes.
    pub fn drain(&self) {
        let _: Vec<()> = self.broadcast(|tx| ShardMsg::Drain { reply: tx });
    }

    /// Park every worker after it finishes its current claim (inboxes
    /// keep accepting routed batches — the deterministic way to observe
    /// coalescing and queue depth). Resume by dropping the guard.
    pub fn pause(&self) -> PausedShards {
        self.pool.pause()
    }

    /// Synchronous store reports from every shard.
    pub fn inspect(&self) -> Vec<ShardReport> {
        self.broadcast(|tx| ShardMsg::Inspect { reply: tx })
    }

    /// Evict all operator state on every shard; returns bytes freed.
    pub fn evict_all(&self) -> usize {
        self.broadcast(|tx| ShardMsg::Evict {
            template: None,
            reply: tx,
        })
        .into_iter()
        .sum()
    }

    /// Evict the operator state of one template's candidates on its
    /// owning shard; returns bytes freed.
    pub fn evict_template(&self, template: &QueryTemplate) -> usize {
        let (tx, rx) = bounded(1);
        self.pool.send(
            self.shard_of(template),
            ShardMsg::Evict {
                template: Some(template.clone()),
                reply: tx,
            },
        );
        rx.recv().unwrap_or(0)
    }

    /// Flush every sketch's annotation-pool / row-interner caches on
    /// every shard; returns the number of sketches flushed.
    pub fn flush_pools(&self) -> usize {
        self.broadcast(|tx| ShardMsg::FlushPools { reply: tx })
            .into_iter()
            .sum()
    }

    /// Gather the advisor's view of every stored sketch (control
    /// barrier; shards reply in parallel, order is normalized by the
    /// caller's sort).
    pub fn advise_gather(&self) -> Vec<SketchCard> {
        self.broadcast(|tx| ShardMsg::AdviseGather { reply: tx })
            .into_iter()
            .flatten()
            .collect()
    }

    /// Scatter one planned advisor round to the owning shards and gather
    /// the summed outcome. Promotion maintenance errors propagate (first
    /// error, after every shard replied).
    pub fn advise_apply(&self, actions: &[AdviseAction]) -> crate::Result<ApplyOutcome> {
        let mut per_shard: Vec<Vec<AdviseAction>> =
            (0..self.pool.len()).map(|_| Vec::new()).collect();
        for action in actions {
            per_shard[self.shard_of(&action.template)].push(action.clone());
        }
        let mut replies = Vec::new();
        for (shard, shard_actions) in per_shard.into_iter().enumerate() {
            if shard_actions.is_empty() {
                continue;
            }
            let (tx, rx) = bounded(1);
            self.pool.send(
                shard,
                ShardMsg::AdviseApply {
                    actions: shard_actions,
                    reply: tx,
                },
            );
            replies.push(rx);
        }
        let mut outcome = ApplyOutcome::default();
        let mut first_error = None;
        for rx in replies {
            match rx.recv() {
                Ok(Ok(o)) => outcome.absorb(&o),
                Ok(Err(e)) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
                Err(_) => {} // worker gone (shutdown race)
            }
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(outcome),
        }
    }

    /// Recapture every sketch with fresh partitions on every shard.
    pub fn repartition_all(&self) -> usize {
        self.broadcast(|tx| ShardMsg::Repartition { reply: tx })
            .into_iter()
            .sum()
    }
}
