//! Per-table delta routing.
//!
//! The router is the scheduler's single ingestion point: each committed
//! update is read out of the backend's delta log **once**, interned into
//! a shared [`TableDelta`] (rows are `Arc`-backed [`Row`]s deduplicated
//! by a [`RowInterner`], so fan-out ships pointers, not payloads), and
//! delivered only to the shards whose sketches reference the table. A
//! table nobody references is never materialised at all.
//!
//! Batches carry per-record versions: a shard-side maintainer skips
//! entries at or below its own maintained version, so routed batches may
//! safely overlap history a sketch has already consumed (registration
//! races, on-demand maintenance overtaking the queue). Per table, the
//! router guarantees batches cover disjoint, contiguous, monotonically
//! increasing version ranges.

use imp_engine::Database;
use imp_storage::{FxHashMap, Row, RowInterner};
use std::sync::Arc;

/// One routed change: a shared row payload with signed multiplicity,
/// tagged with the snapshot version of the statement that produced it.
#[derive(Debug, Clone)]
pub struct RoutedEntry {
    /// The affected tuple (`Arc`-shared; clone is O(1)).
    pub row: Row,
    /// Signed multiplicity (+n insert, −n delete).
    pub mult: i64,
    /// Snapshot version of the producing statement.
    pub version: u64,
}

/// One table's update batch, shared (`Arc`) across every interested
/// shard. Cheap to ship between threads: entries hold `Arc` rows and
/// plain integers.
#[derive(Debug)]
pub struct TableDelta {
    /// The updated table (lowercase).
    pub table: String,
    /// Entries are strictly after this version…
    pub from_version: u64,
    /// …and at most this version (the max record version contained).
    pub to_version: u64,
    /// The changes, in log order.
    pub entries: Vec<RoutedEntry>,
}

/// Routes each table's delta-log suffix to the shards that need it.
#[derive(Debug, Default)]
pub struct DeltaRouter {
    /// Table → shards with at least one sketch referencing it. Interest
    /// is sticky: a shard that drops its last sketch for a table keeps
    /// receiving (harmless, version-filtered) batches until restart.
    interest: FxHashMap<String, Vec<usize>>,
    /// Table → highest version already routed.
    last_routed: FxHashMap<String, u64>,
    /// Dedupe row payloads once, for all shards. Self-bounding: the
    /// interner flushes its cache when it outgrows
    /// `imp_storage::pool::ROW_INTERNER_LIMIT` distinct rows, so a stream of
    /// fresh inserts cannot pin payloads for the router's lifetime
    /// (in-flight batches keep their own `Arc`s).
    interner: RowInterner,
}

impl DeltaRouter {
    /// Fresh router with no interests.
    pub fn new() -> DeltaRouter {
        DeltaRouter::default()
    }

    /// Register `shard`'s interest in `tables`. The first registration of
    /// a table starts routing *after* the table's current log tail — the
    /// registering sketch's capture already covers everything before it.
    pub fn register(&mut self, db: &Database, tables: &[String], shard: usize) {
        for table in tables {
            let key = table.to_ascii_lowercase();
            let shards = self.interest.entry(key.clone()).or_default();
            if !shards.contains(&shard) {
                shards.push(shard);
                shards.sort_unstable();
            }
            self.last_routed.entry(key).or_insert_with(|| {
                db.table(table)
                    .ok()
                    .and_then(|t| t.delta_log().all().last().map(|r| r.version))
                    .unwrap_or(0)
            });
        }
    }

    /// Shards currently interested in `table`.
    pub fn interested(&self, table: &str) -> &[usize] {
        self.interest
            .get(&table.to_ascii_lowercase())
            .map(Vec::as_slice)
            .unwrap_or_default()
    }

    /// Build the shared batch for `table`'s unrouted log suffix, advancing
    /// the routing cursor. `None` when nobody is interested or nothing new
    /// was logged.
    pub fn collect(&mut self, db: &Database, table: &str) -> Option<(Arc<TableDelta>, Vec<usize>)> {
        let key = table.to_ascii_lowercase();
        let shards = self.interest.get(&key)?.clone();
        if shards.is_empty() {
            return None;
        }
        let from_version = *self.last_routed.get(&key)?;
        let records = db.delta_since(&key, from_version).ok()?;
        if records.is_empty() {
            return None;
        }
        let mut entries = Vec::with_capacity(records.len());
        let mut to_version = from_version;
        for r in records {
            to_version = to_version.max(r.version);
            entries.push(RoutedEntry {
                row: self.interner.intern(r.row.clone()),
                mult: r.op.sign() * r.mult as i64,
                version: r.version,
            });
        }
        self.last_routed.insert(key.clone(), to_version);
        Some((
            Arc::new(TableDelta {
                table: key,
                from_version,
                to_version,
                entries,
            }),
            shards,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imp_storage::{row, DataType, Field, Schema};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "t",
            Schema::new(vec![
                Field::new("k", DataType::Int),
                Field::new("v", DataType::Int),
            ]),
        )
        .unwrap();
        db.table_mut("t").unwrap().bulk_load([row![1, 10]]).unwrap();
        db
    }

    #[test]
    fn uninterested_tables_are_never_materialised() {
        let mut db = db();
        let mut router = DeltaRouter::new();
        db.execute_sql("INSERT INTO t VALUES (2, 20)").unwrap();
        assert!(router.collect(&db, "t").is_none());
    }

    #[test]
    fn registration_skips_history_then_routes_contiguously() {
        let mut db = db();
        let mut router = DeltaRouter::new();
        db.execute_sql("INSERT INTO t VALUES (2, 20)").unwrap();
        router.register(&db, &["t".into()], 0);
        // History before registration is covered by the capture.
        assert!(router.collect(&db, "t").is_none());
        db.execute_sql("INSERT INTO t VALUES (3, 30)").unwrap();
        db.execute_sql("DELETE FROM t WHERE k = 1").unwrap();
        let (batch, shards) = router.collect(&db, "t").unwrap();
        assert_eq!(shards, vec![0]);
        assert_eq!(batch.entries.len(), 2);
        assert_eq!(batch.entries[0].mult, 1);
        assert_eq!(batch.entries[1].mult, -1);
        assert!(batch.from_version < batch.to_version);
        // The cursor advanced: nothing left to route.
        assert!(router.collect(&db, "t").is_none());
    }

    #[test]
    fn fanout_lists_every_interested_shard_once() {
        let mut db = db();
        let mut router = DeltaRouter::new();
        router.register(&db, &["t".into()], 2);
        router.register(&db, &["t".into()], 0);
        router.register(&db, &["t".into()], 2);
        db.execute_sql("INSERT INTO t VALUES (4, 40)").unwrap();
        let (_, shards) = router.collect(&db, "t").unwrap();
        assert_eq!(shards, vec![0, 2]);
    }

    #[test]
    fn shared_rows_are_interned_across_batches() {
        let mut db = db();
        let mut router = DeltaRouter::new();
        router.register(&db, &["t".into()], 0);
        db.execute_sql("INSERT INTO t VALUES (5, 50)").unwrap();
        let (a, _) = router.collect(&db, "t").unwrap();
        db.execute_sql("DELETE FROM t WHERE k = 5").unwrap();
        let (b, _) = router.collect(&db, "t").unwrap();
        // Same tuple payload → same allocation through the interner.
        assert_eq!(a.entries[0].row.ptr_id(), b.entries[0].row.ptr_id());
    }
}
