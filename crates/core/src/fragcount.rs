//! Fragment counters.
//!
//! Aggregation state keeps, per group, "a map ℱ_g recording for each range
//! ρ of Φ the number of input tuples belonging to the group with ρ in
//! their provenance sketch" (§5.2.5); the merge operator μ keeps the same
//! shape globally (§5.1). Annotations are tiny for most tuples while the
//! partition can have thousands of ranges, so the per-group representation
//! is adaptive: a sorted small vector that promotes to a hash map once it
//! grows past a threshold.

use imp_storage::{BitVec, FxHashMap};

/// Entries above which [`FragCounts`] switches from the sorted-vec to the
/// hash-map representation.
const PROMOTE_AT: usize = 16;

/// Sparse counter map `fragment → signed count`.
#[derive(Debug, Clone, PartialEq)]
pub enum FragCounts {
    /// Sorted by fragment id; few entries.
    Small(Vec<(u32, i64)>),
    /// Many entries.
    Large(FxHashMap<u32, i64>),
}

impl Default for FragCounts {
    fn default() -> Self {
        FragCounts::Small(Vec::new())
    }
}

/// Zero-crossing transition of one counter update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// Count was zero, now non-zero → fragment enters the sketch.
    Appeared,
    /// Count was non-zero, now zero → fragment leaves the sketch.
    Disappeared,
    /// No zero crossing.
    None,
}

impl FragCounts {
    /// Empty counters.
    pub fn new() -> FragCounts {
        FragCounts::default()
    }

    /// Add `delta` to the counter of `frag`, reporting the transition.
    pub fn add(&mut self, frag: u32, delta: i64) -> Transition {
        if delta == 0 {
            return Transition::None;
        }
        let (old, new) = match self {
            FragCounts::Small(v) => match v.binary_search_by_key(&frag, |e| e.0) {
                Ok(i) => {
                    let old = v[i].1;
                    let new = old + delta;
                    if new == 0 {
                        v.remove(i);
                    } else {
                        v[i].1 = new;
                    }
                    (old, new)
                }
                Err(i) => {
                    v.insert(i, (frag, delta));
                    if v.len() > PROMOTE_AT {
                        let map: FxHashMap<u32, i64> = v.drain(..).collect();
                        *self = FragCounts::Large(map);
                    }
                    (0, delta)
                }
            },
            FragCounts::Large(m) => {
                let e = m.entry(frag).or_insert(0);
                let old = *e;
                *e += delta;
                let new = *e;
                if new == 0 {
                    m.remove(&frag);
                }
                (old, new)
            }
        };
        match (old == 0, new == 0) {
            (true, false) => Transition::Appeared,
            (false, true) => Transition::Disappeared,
            _ => Transition::None,
        }
    }

    /// Count of one fragment (0 when absent).
    pub fn get(&self, frag: u32) -> i64 {
        match self {
            FragCounts::Small(v) => v
                .binary_search_by_key(&frag, |e| e.0)
                .map(|i| v[i].1)
                .unwrap_or(0),
            FragCounts::Large(m) => m.get(&frag).copied().unwrap_or(0),
        }
    }

    /// Number of fragments with non-zero count.
    pub fn len(&self) -> usize {
        match self {
            FragCounts::Small(v) => v.len(),
            FragCounts::Large(m) => m.len(),
        }
    }

    /// True iff all counters are zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate `(fragment, count)` pairs with non-zero count.
    pub fn iter(&self) -> Box<dyn Iterator<Item = (u32, i64)> + '_> {
        match self {
            FragCounts::Small(v) => Box::new(v.iter().copied()),
            FragCounts::Large(m) => Box::new(m.iter().map(|(k, v)| (*k, *v))),
        }
    }

    /// Bitvector of fragments with positive count — the group's sketch
    /// `P′ = {ρ | ℱ′_g[ρ] > 0}` (§5.2.5).
    pub fn to_bits(&self, total: usize) -> BitVec {
        let mut bits = BitVec::new(total);
        for (f, c) in self.iter() {
            debug_assert!(c >= 0, "negative fragment count {c} for {f}");
            if c > 0 {
                bits.set(f as usize, true);
            }
        }
        bits
    }

    /// Any counter negative? (State-corruption detector.)
    pub fn any_negative(&self) -> bool {
        self.iter().any(|(_, c)| c < 0)
    }

    /// Approximate heap footprint.
    pub fn heap_size(&self) -> usize {
        match self {
            FragCounts::Small(v) => v.capacity() * std::mem::size_of::<(u32, i64)>(),
            FragCounts::Large(m) => m.capacity() * (std::mem::size_of::<(u32, i64)>() + 8),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transitions() {
        let mut f = FragCounts::new();
        assert_eq!(f.add(3, 1), Transition::Appeared);
        assert_eq!(f.add(3, 2), Transition::None);
        assert_eq!(f.add(3, -3), Transition::Disappeared);
        assert_eq!(f.get(3), 0);
    }

    #[test]
    fn example_5_2_counts() {
        // S[ρ1]=1, S[ρ2]=3; delete ⟨t3,{ρ1,ρ2}⟩ → ρ1 disappears.
        let mut f = FragCounts::new();
        f.add(1, 1);
        f.add(2, 3);
        assert_eq!(f.add(1, -1), Transition::Disappeared);
        assert_eq!(f.add(2, -1), Transition::None);
        assert_eq!(f.get(2), 2);
    }

    #[test]
    fn promotes_to_large() {
        let mut f = FragCounts::new();
        for i in 0..40u32 {
            f.add(i, 1);
        }
        assert!(matches!(f, FragCounts::Large(_)));
        assert_eq!(f.len(), 40);
        for i in 0..40u32 {
            assert_eq!(f.get(i), 1);
        }
    }

    #[test]
    fn to_bits_only_positive() {
        let mut f = FragCounts::new();
        f.add(0, 2);
        f.add(5, 1);
        f.add(5, -1);
        let bits = f.to_bits(8);
        assert_eq!(bits.iter_ones().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn small_stays_sorted() {
        let mut f = FragCounts::new();
        for i in [5u32, 1, 3] {
            f.add(i, 1);
        }
        if let FragCounts::Small(v) = &f {
            let ids: Vec<u32> = v.iter().map(|e| e.0).collect();
            assert_eq!(ids, vec![1, 3, 5]);
        } else {
            panic!("should be small");
        }
    }
}
