//! Annotated deltas flowing between incremental operators.
//!
//! A delta is a bag of `Δ±⟨t, P⟩ⁿ` entries (paper §4.3) represented with
//! *signed* multiplicities: `mult > 0` is an insertion, `mult < 0` a
//! deletion. The sign algebra makes the four-case join rule of §5.2.4 fall
//! out of multiplication (`Δ- × Δ- = Δ+`, `Δ- × Δ+ = Δ-`, …).
//!
//! # Retraction is first-class
//!
//! Every operator is *symmetric in the sign*: a high-churn batch mixing
//! inserts and deletes of the same tuples flows through selection,
//! projection, the binary and n-ary joins, and aggregation exactly like
//! an insert-only batch — state merges by `(row, annotation content)`
//! and cancels at zero multiplicity everywhere
//! ([`crate::opt::JoinSideIndex`], [`crate::opt::NarySideIndex`],
//! aggregation groups), and [`normalize_delta_with`] annihilates
//! same-batch insert+delete pairs before an operator's output reaches
//! its parent. The `nary_differential` and `fig_churn`/`fig_deep`
//! suites drive eviction/restore cycles under such churn and require
//! byte-identical sketches against the oracles.
//!
//! # The `DeltaBatch` / `AnnotPool` design
//!
//! Deltas are represented as [`DeltaBatch`]es: each [`DeltaEntry`] holds
//! an `Arc`-shared [`imp_storage::Row`] payload and a pooled [`AnnotId`]
//! instead of an owned bitvector. The batch is *interpreted against* the
//! maintainer's [`AnnotPool`], which hash-conses annotation bitvectors:
//!
//! * **Id stability / canonicity** — within one pool, equal ids ⇔ equal
//!   bitvectors, and an id stays valid until the pool is cleared. Ids
//!   are only live *within* one maintenance/bootstrap call (persistent
//!   operator state holds fragment counters or `Arc<BitVec>` content
//!   handles, never ids), so the pool may safely be flushed between
//!   runs — which happens on state eviction and when the pool outgrows
//!   its size bound. Operators compare, hash, and group by `u32` ids
//!   where the flat representation compared whole bitvectors.
//! * **Memoized unions** — `pool.union(a, b)` consults a symmetric memo
//!   table; each distinct unordered pair is computed at most once, via
//!   in-place [`imp_storage::BitVec::union_with`] on a single fresh
//!   clone. The join four-case rule and aggregate re-annotation thus
//!   allocate per *distinct annotation combination*, not per output row.
//! * **Interned rows** — delta ingestion routes payloads through a
//!   [`imp_storage::RowInterner`] so a stream that repeatedly touches the
//!   same tuple shares one allocation; [`delta_heap_size`] counts each
//!   shared payload / pooled annotation once, which is the quantity the
//!   Fig. 11/17 memory accounting reports.
//!
//! Ordering-sensitive operator state (top-k) stores `Arc<BitVec>` handles
//! obtained from [`AnnotPool::share`] instead of raw ids, so its ordering
//! follows annotation *content* and survives state eviction / restore
//! even though pool ids are reassigned on re-interning.

pub use imp_storage::{AnnotId, AnnotPool, DeltaBatch, DeltaEntry};
use imp_storage::{BitVec, DeltaColumns, FxHashMap, FxHashSet, Row};

/// Default batch size at which normalize switches to the columnar
/// sort-then-run-length kernel ([`DeltaColumns::merged`]); smaller
/// batches keep the row-at-a-time hash fold, whose setup cost is lower.
/// Configurable per run via `OpConfig::columnar_min`.
pub const NORMALIZE_COLUMNAR_MIN: usize = 32;

/// Fold entries with identical `(row, annotation-id)` into one, dropping
/// zero-multiplicity results, at the default columnar crossover. See
/// [`normalize_delta_with`].
pub fn normalize_delta(delta: DeltaBatch) -> DeltaBatch {
    normalize_delta_with(delta, NORMALIZE_COLUMNAR_MIN)
}

/// Fold entries with identical `(row, annotation-id)` into one, dropping
/// zero-multiplicity results. Keeps batches compact between operators,
/// and is where same-batch insert+delete churn annihilates.
///
/// Annotation ids are canonical within a pool, so the fold key never
/// touches bitvector contents. Batches of at least `columnar_min` rows
/// take the columnar sort-then-run-length kernel; both paths produce the
/// identical batch (merged, zero-filtered, sorted by
/// `(row, annotation)`).
pub fn normalize_delta_with(delta: DeltaBatch, columnar_min: usize) -> DeltaBatch {
    if delta.len() <= 1 {
        return delta;
    }
    let rows = delta.len();
    if rows >= columnar_min {
        crate::obs::kernel::timed(crate::obs::KernelPath::Columnar, rows, || {
            DeltaColumns::from_owned(delta).merged()
        })
    } else {
        crate::obs::kernel::timed(crate::obs::KernelPath::Row, rows, || {
            normalize_delta_rowwise(delta)
        })
    }
}

/// The row-at-a-time normalize fallback (also the property-test oracle
/// for the columnar kernel).
pub fn normalize_delta_rowwise(delta: DeltaBatch) -> DeltaBatch {
    if delta.len() <= 1 {
        return delta;
    }
    let mut map: FxHashMap<(Row, AnnotId), i64> = FxHashMap::default();
    for d in delta {
        *map.entry((d.row, d.annot)).or_insert(0) += d.mult;
    }
    let mut out: DeltaBatch = map
        .into_iter()
        .filter(|(_, m)| *m != 0)
        .map(|((row, annot), mult)| DeltaEntry { row, annot, mult })
        .collect();
    // Deterministic order for tests and reproducible merge processing.
    out.sort_by(|a, b| (&a.row, a.annot).cmp(&(&b.row, b.annot)));
    out
}

/// Semi-naive fixpoint over delta batches — the recursion hook for
/// monotone queries (transitive closure, reachability) on top of the
/// same signed-delta algebra the operators use.
///
/// Starting from `seed`, repeatedly calls `step(acc, frontier)` — which
/// must derive the facts *newly producible* from the frontier against
/// the accumulated set — keeps only genuinely new `(row, annotation)`
/// facts as the next frontier, and stops when a round adds nothing.
/// Distinct-set semantics: accumulated facts are capped at multiplicity
/// one, the standard semi-naive regime (negative multiplicities in
/// `step` output retract pending frontier facts but never un-derive
/// accumulated ones). Returns the accumulated batch, normalized.
///
/// This is deliberately a *library* hook rather than an `IncNode`:
/// recursive plans are not yet compiled from SQL, but the n-ary circuit
/// emits exactly the `DeltaBatch`es a recursive step consumes, so a
/// caller can stack `semi_naive` on any maintained plan's output today.
pub fn semi_naive(
    seed: DeltaBatch,
    mut step: impl FnMut(&DeltaBatch, &DeltaBatch) -> DeltaBatch,
) -> DeltaBatch {
    let mut acc = normalize_delta(seed);
    let mut seen: FxHashSet<(Row, AnnotId)> =
        acc.iter().map(|d| (d.row.clone(), d.annot)).collect();
    let mut frontier = acc.clone();
    while !frontier.is_empty() {
        let produced = normalize_delta(step(&acc, &frontier));
        let mut next = DeltaBatch::new();
        for d in produced {
            if d.mult > 0 && seen.insert((d.row.clone(), d.annot)) {
                next.push(DeltaEntry { mult: 1, ..d });
            }
        }
        for d in &next {
            acc.push(d.clone());
        }
        frontier = next;
    }
    normalize_delta(acc)
}

/// Total number of touched tuples (sum of |mult|).
pub fn delta_magnitude(delta: &DeltaBatch) -> u64 {
    delta.iter().map(|d| d.mult.unsigned_abs()).sum()
}

/// Pool-aware heap footprint of a delta batch: shared row payloads and
/// pooled annotations are counted once (memory experiments, Fig. 11/17).
pub fn delta_heap_size(delta: &DeltaBatch, pool: &AnnotPool) -> usize {
    let mut seen_rows: FxHashSet<usize> = FxHashSet::default();
    let mut seen_annots: FxHashSet<AnnotId> = FxHashSet::default();
    let mut size = delta.len() * std::mem::size_of::<DeltaEntry>();
    for d in delta.iter() {
        if seen_rows.insert(d.row.ptr_id()) {
            size += d.row.heap_size();
        }
        if seen_annots.insert(d.annot) {
            size += pool.get(d.annot).heap_size();
        }
    }
    size
}

/// What the same batch would occupy in the flat pre-pool representation
/// (one owned row + bitvector per entry) — the baseline the pool-aware
/// accounting is compared against.
pub fn delta_heap_size_flat(delta: &DeltaBatch, pool: &AnnotPool) -> usize {
    let entry =
        std::mem::size_of::<Row>() + std::mem::size_of::<BitVec>() + std::mem::size_of::<i64>();
    delta
        .iter()
        .map(|d| d.row.heap_size() + pool.get(d.annot).heap_size() + entry)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use imp_storage::row;

    fn entry(pool: &mut AnnotPool, r: Row, bit: usize, mult: i64) -> DeltaEntry {
        DeltaEntry {
            row: r,
            annot: pool.singleton(bit),
            mult,
        }
    }

    #[test]
    fn normalize_merges_and_cancels() {
        let mut p = AnnotPool::new(4);
        let d: DeltaBatch = vec![
            entry(&mut p, row![1], 0, 2),
            entry(&mut p, row![1], 0, -2),
            entry(&mut p, row![2], 1, 1),
            entry(&mut p, row![2], 1, 3),
        ]
        .into();
        let n = normalize_delta(d);
        assert_eq!(n.len(), 1);
        assert_eq!(n[0].row, row![2]);
        assert_eq!(n[0].mult, 4);
    }

    #[test]
    fn distinct_annotations_not_merged() {
        let mut p = AnnotPool::new(4);
        let d: DeltaBatch = vec![entry(&mut p, row![1], 0, 1), entry(&mut p, row![1], 1, 1)].into();
        assert_eq!(normalize_delta(d).len(), 2);
    }

    #[test]
    fn semi_naive_reaches_transitive_closure() {
        use imp_storage::Value;
        // Path 0→1→2→3 with a back edge 3→1 (a cycle — naive iteration
        // would rederive pairs forever; the frontier discipline stops).
        let mut p = AnnotPool::new(8);
        let edges: Vec<(i64, i64)> = vec![(0, 1), (1, 2), (2, 3), (3, 1)];
        let annot = p.singleton(0);
        let seed: DeltaBatch = edges
            .iter()
            .map(|&(a, b)| DeltaEntry {
                row: row![a, b],
                annot,
                mult: 1,
            })
            .collect::<Vec<_>>()
            .into();
        let closure = semi_naive(seed, |_, frontier| {
            let mut out = DeltaBatch::new();
            for f in frontier {
                for &(x, y) in &edges {
                    if f.row[1] == Value::Int(x) {
                        out.push(DeltaEntry {
                            row: Row::new(vec![f.row[0].clone(), Value::Int(y)]),
                            annot: f.annot,
                            mult: 1,
                        });
                    }
                }
            }
            out
        });
        // Reachability: 0 reaches {1,2,3}; each of 1,2,3 reaches {1,2,3}.
        assert_eq!(closure.len(), 12);
        assert!(closure.iter().all(|d| d.mult == 1));
    }

    #[test]
    fn magnitude_sums_absolute() {
        let mut p = AnnotPool::new(4);
        let d: DeltaBatch =
            vec![entry(&mut p, row![1], 0, 3), entry(&mut p, row![2], 1, -2)].into();
        assert_eq!(delta_magnitude(&d), 5);
    }

    #[test]
    fn pooled_heap_size_beats_flat_on_repetition() {
        // 100 entries over one shared row and one pooled annotation.
        let mut p = AnnotPool::new(64);
        let mut ri = imp_storage::RowInterner::new();
        let mut d = DeltaBatch::new();
        for i in 0..100i64 {
            let row = ri.intern(row![7, "same", 42]);
            d.push_entry(row, p.singleton(3), if i % 2 == 0 { 1 } else { -1 });
        }
        let pooled = delta_heap_size(&d, &p);
        let flat = delta_heap_size_flat(&d, &p);
        // The pooled size is dominated by the fixed 32-byte entries; the
        // shared payload/annotation heap is counted exactly once.
        assert!(
            pooled < flat / 3,
            "pooled {pooled} should be far below flat {flat}"
        );
    }
}
