//! Annotated deltas flowing between incremental operators.
//!
//! A delta is a bag of `Δ±⟨t, P⟩ⁿ` entries (paper §4.3) represented with
//! *signed* multiplicities: `mult > 0` is an insertion, `mult < 0` a
//! deletion. The sign algebra makes the four-case join rule of §5.2.4 fall
//! out of multiplication (`Δ- × Δ- = Δ+`, `Δ- × Δ+ = Δ-`, …).

use imp_sketch::AnnotatedDeltaRow;
use imp_storage::{BitVec, FxHashMap, Row};

/// A batch of annotated delta tuples.
pub type AnnotDelta = Vec<AnnotatedDeltaRow>;

/// Fold entries with identical `(row, annotation)` into one, dropping
/// zero-multiplicity results. Keeps batches compact between operators.
pub fn normalize_delta(delta: AnnotDelta) -> AnnotDelta {
    if delta.len() <= 1 {
        return delta;
    }
    let mut map: FxHashMap<(Row, BitVec), i64> = FxHashMap::default();
    for d in delta {
        *map.entry((d.row, d.annot)).or_insert(0) += d.mult;
    }
    let mut out: Vec<AnnotatedDeltaRow> = map
        .into_iter()
        .filter(|(_, m)| *m != 0)
        .map(|((row, annot), mult)| AnnotatedDeltaRow { row, annot, mult })
        .collect();
    // Deterministic order for tests and reproducible merge processing.
    out.sort_by(|a, b| (&a.row, &a.annot).cmp(&(&b.row, &b.annot)));
    out
}

/// Total number of touched tuples (sum of |mult|).
pub fn delta_magnitude(delta: &AnnotDelta) -> u64 {
    delta.iter().map(|d| d.mult.unsigned_abs()).sum()
}

/// Approximate heap footprint of a delta batch (memory experiments).
pub fn delta_heap_size(delta: &AnnotDelta) -> usize {
    delta
        .iter()
        .map(|d| d.row.heap_size() + d.annot.heap_size() + std::mem::size_of::<AnnotatedDeltaRow>())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use imp_storage::row;

    fn entry(r: Row, bit: usize, mult: i64) -> AnnotatedDeltaRow {
        AnnotatedDeltaRow {
            row: r,
            annot: BitVec::singleton(4, bit),
            mult,
        }
    }

    #[test]
    fn normalize_merges_and_cancels() {
        let d = vec![
            entry(row![1], 0, 2),
            entry(row![1], 0, -2),
            entry(row![2], 1, 1),
            entry(row![2], 1, 3),
        ];
        let n = normalize_delta(d);
        assert_eq!(n.len(), 1);
        assert_eq!(n[0].row, row![2]);
        assert_eq!(n[0].mult, 4);
    }

    #[test]
    fn distinct_annotations_not_merged() {
        let d = vec![entry(row![1], 0, 1), entry(row![1], 1, 1)];
        assert_eq!(normalize_delta(d).len(), 2);
    }

    #[test]
    fn magnitude_sums_absolute() {
        let d = vec![entry(row![1], 0, 3), entry(row![2], 1, -2)];
        assert_eq!(delta_magnitude(&d), 5);
    }
}
