//! Incremental aggregation (paper §5.2.5 / §5.2.6).
//!
//! Per group `g` the state holds the running aggregates, the group's tuple
//! count `CNT`, and the fragment counters `ℱ_g`. SUM / COUNT / AVG share a
//! numeric accumulator; MIN / MAX keep an ordered multiset (`BTreeMap`, the
//! paper's red-black tree) — optionally bounded to the best `l` values
//! with a recapture fallback (§7.2). Group results are emitted as one
//! `Δ-⟨old⟩, Δ+⟨new⟩` pair per *touched* group per batch, using lazily
//! created snapshots of the pre-batch output (§7.1: "to avoid producing
//! multiple delta tuples per group we maintain copies of the previous
//! states of groups … created lazily when a group is updated for the first
//! time when processing a delta").

use super::{IncNode, MaintCtx};
use crate::delta::{DeltaBatch, DeltaEntry};
use crate::error::CoreError;
use crate::fragcount::FragCounts;
use crate::Result;
use imp_engine::eval::NumAcc;
use imp_sql::{AggFunc, AggSpec, Expr};
use imp_storage::{
    key_runs, sort_keys_stable, AnnotId, AnnotPool, FxHashMap, Row, Value, COLUMNAR_CHUNK,
};
use std::collections::BTreeMap;

/// Default input-batch size at which aggregation takes the columnar
/// group path (chunked key extraction + sort-then-run-length group-by);
/// smaller batches keep the per-row hash path, whose setup cost is
/// lower. Configurable per run via `OpConfig::columnar_min`.
pub const AGG_COLUMNAR_MIN: usize = 32;

/// Incremental aggregation operator (also implements δ when `aggs` is
/// empty: output is the group key alone).
#[derive(Debug)]
pub struct AggOp {
    input: Box<IncNode>,
    group_by: Vec<Expr>,
    aggs: Vec<AggSpec>,
    groups: FxHashMap<Row, GroupState>,
    /// Aggregation without GROUP BY: the single group always exists.
    global: bool,
    minmax_buffer: Option<usize>,
    /// Columnar group-path crossover for input batches.
    columnar_min: usize,
}

/// Per-group state `S[g] = (aggregates, CNT, P, ℱ_g)`.
#[derive(Debug, Clone)]
pub struct GroupState {
    /// Total multiplicity of input tuples in the group (`CNT`).
    pub count: i64,
    /// Fragment counters `ℱ_g`.
    pub frags: FragCounts,
    /// One accumulator per aggregation function.
    pub accs: Vec<IncAcc>,
}

impl GroupState {
    fn new(aggs: &[AggSpec], buffer: Option<usize>) -> GroupState {
        GroupState {
            count: 0,
            frags: FragCounts::new(),
            accs: aggs.iter().map(|a| IncAcc::new(a.func, buffer)).collect(),
        }
    }
}

/// Incremental accumulator for one aggregation function.
#[derive(Debug, Clone)]
pub enum IncAcc {
    /// `SUM(a)`: running sum + count of non-NULL inputs.
    Sum {
        /// The running sum.
        sum: NumAcc,
        /// Non-NULL input multiplicity.
        non_null: i64,
    },
    /// `COUNT(a)` / `COUNT(*)`.
    Count {
        /// Counted multiplicity.
        non_null: i64,
    },
    /// `AVG(a)` = SUM / CNT (§5.2.5).
    Avg {
        /// The running sum.
        sum: NumAcc,
        /// Non-NULL input multiplicity.
        non_null: i64,
    },
    /// `MIN(a)`: ordered multiset of values.
    Min(OrderedAcc),
    /// `MAX(a)`: ordered multiset of values.
    Max(OrderedAcc),
}

impl IncAcc {
    fn new(func: AggFunc, buffer: Option<usize>) -> IncAcc {
        match func {
            AggFunc::Sum => IncAcc::Sum {
                sum: NumAcc::default(),
                non_null: 0,
            },
            AggFunc::Count => IncAcc::Count { non_null: 0 },
            AggFunc::Avg => IncAcc::Avg {
                sum: NumAcc::default(),
                non_null: 0,
            },
            AggFunc::Min => IncAcc::Min(OrderedAcc::new(true, buffer)),
            AggFunc::Max => IncAcc::Max(OrderedAcc::new(false, buffer)),
        }
    }

    /// Apply one input (`arg = None` for `count(*)`).
    fn update(&mut self, arg: Option<&Value>, mult: i64) -> Result<bool> {
        let mut needs_recapture = false;
        match self {
            IncAcc::Count { non_null } => match arg {
                None => *non_null += mult,
                Some(v) if !v.is_null() => *non_null += mult,
                _ => {}
            },
            IncAcc::Sum { sum, non_null } | IncAcc::Avg { sum, non_null } => {
                if let Some(v) = arg {
                    if !v.is_null() {
                        sum.add(v, mult).map_err(CoreError::Engine)?;
                        *non_null += mult;
                    }
                }
            }
            IncAcc::Min(acc) | IncAcc::Max(acc) => {
                if let Some(v) = arg {
                    if !v.is_null() {
                        needs_recapture = acc.update(v, mult);
                    }
                }
            }
        }
        Ok(needs_recapture)
    }

    /// Current output value.
    fn finish(&self) -> Value {
        match self {
            IncAcc::Count { non_null } => Value::Int(*non_null),
            IncAcc::Sum { sum, non_null } => {
                if *non_null == 0 {
                    Value::Null
                } else {
                    sum.value()
                }
            }
            IncAcc::Avg { sum, non_null } => {
                if *non_null == 0 {
                    Value::Null
                } else {
                    Value::Float(sum.as_f64() / *non_null as f64)
                }
            }
            IncAcc::Min(acc) | IncAcc::Max(acc) => acc.best().cloned().unwrap_or(Value::Null),
        }
    }

    fn heap_size(&self) -> usize {
        match self {
            IncAcc::Min(acc) | IncAcc::Max(acc) => acc.heap_size(),
            _ => 0,
        }
    }
}

/// Ordered multiset (`CNT` tree of §5.2.6), optionally bounded to the best
/// `l` distinct values (§7.2).
#[derive(Debug, Clone)]
pub struct OrderedAcc {
    tree: BTreeMap<Value, i64>,
    /// `true` = MIN (best = smallest); `false` = MAX.
    is_min: bool,
    buffer: Option<usize>,
    /// Values beyond the horizon were evicted at some point.
    truncated: bool,
}

impl OrderedAcc {
    fn new(is_min: bool, buffer: Option<usize>) -> OrderedAcc {
        OrderedAcc {
            tree: BTreeMap::new(),
            is_min,
            buffer,
            truncated: false,
        }
    }

    /// Best value (minimum or maximum).
    pub fn best(&self) -> Option<&Value> {
        if self.is_min {
            self.tree.keys().next()
        } else {
            self.tree.keys().next_back()
        }
    }

    /// Worst *stored* value — the truncation horizon.
    fn horizon(&self) -> Option<&Value> {
        if self.is_min {
            self.tree.keys().next_back()
        } else {
            self.tree.keys().next()
        }
    }

    /// Is `v` strictly beyond the stored horizon (i.e. could only have
    /// been evicted, never needed)?
    fn beyond_horizon(&self, v: &Value) -> bool {
        match self.horizon() {
            None => true,
            Some(h) => {
                if self.is_min {
                    v > h
                } else {
                    v < h
                }
            }
        }
    }

    /// Apply `mult` copies of `v`. Returns `true` when the state can no
    /// longer answer and a recapture is required.
    fn update(&mut self, v: &Value, mult: i64) -> bool {
        if mult > 0 {
            if self.truncated && self.beyond_horizon(v) {
                // Invariant: after truncation the tree holds exactly the
                // best `len` values of the full multiset (evicted values
                // are all beyond the horizon). Inserting past the horizon
                // would break that prefix property, so such values are
                // ignored — they cannot become the min/max before the
                // recapture that any horizon underflow triggers.
                return false;
            }
            *self.tree.entry(v.clone()).or_insert(0) += mult;
            if let Some(l) = self.buffer {
                while self.tree.len() > l {
                    let evict = if self.is_min {
                        self.tree.keys().next_back().cloned()
                    } else {
                        self.tree.keys().next().cloned()
                    };
                    if let Some(k) = evict {
                        self.tree.remove(&k);
                        self.truncated = true;
                    }
                }
            }
            return false;
        }
        // Deletion.
        match self.tree.get_mut(v) {
            Some(c) => {
                *c += mult;
                if *c <= 0 {
                    let corrupt = *c < 0;
                    self.tree.remove(v);
                    if corrupt {
                        // More deletions than insertions seen: only
                        // explicable by truncation; recapture.
                        return true;
                    }
                }
                // Buffer exhausted: every stored value gone but older
                // values were evicted — we no longer know the min/max.
                self.truncated && self.tree.is_empty()
            }
            None => {
                if self.truncated && self.beyond_horizon(v) {
                    // Deleting an evicted value: no effect on the best l.
                    false
                } else if self.truncated {
                    // Inside the horizon but unknown: state is stale.
                    true
                } else {
                    // Deletion of a never-inserted value: inconsistent input.
                    true
                }
            }
        }
    }

    /// Number of stored distinct values.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// True iff no values are stored.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    fn heap_size(&self) -> usize {
        self.tree.len() * (std::mem::size_of::<Value>() + std::mem::size_of::<i64>() + 48)
            + self.tree.keys().map(Value::heap_size).sum::<usize>()
    }
}

impl AggOp {
    /// New aggregation operator.
    pub fn new(
        input: IncNode,
        group_by: Vec<Expr>,
        aggs: Vec<AggSpec>,
        config: &super::OpConfig,
    ) -> AggOp {
        let global = group_by.is_empty();
        let minmax_buffer = config.minmax_buffer;
        let mut op = AggOp {
            input: Box::new(input),
            group_by,
            aggs,
            groups: FxHashMap::default(),
            global,
            minmax_buffer,
            columnar_min: config.columnar_min,
        };
        if global {
            // The single group of a global aggregate exists even on empty
            // input (SUM → NULL, COUNT → 0).
            op.groups
                .insert(Row::new(vec![]), GroupState::new(&op.aggs, minmax_buffer));
        }
        op
    }

    /// Current output (row, pooled annotation) of a group, or `None` if
    /// the group does not (or no longer) exist(s). The group's sketch
    /// `{ρ | ℱ_g[ρ] > 0}` is interned, so unchanged groups re-use the
    /// same id and equal sketches share one bitvector.
    fn output_of(
        &self,
        key: &Row,
        total_frags: usize,
        pool: &mut AnnotPool,
    ) -> Option<(Row, AnnotId)> {
        let st = self.groups.get(key)?;
        if st.count <= 0 && !self.global {
            return None;
        }
        let mut vals: Vec<Value> = key.values().to_vec();
        for acc in &st.accs {
            vals.push(acc.finish());
        }
        Some((Row::new(vals), pool.intern(st.frags.to_bits(total_frags))))
    }

    /// Process one batch (see module docs).
    pub fn process(&mut self, ctx: &mut MaintCtx<'_>) -> Result<DeltaBatch> {
        let input = self.input.process(ctx)?;
        if input.is_empty() {
            return Ok(DeltaBatch::new());
        }
        let _span = crate::obs::trace::span("aggregate_delta");
        let total = ctx.pset.total_fragments();
        // Lazy pre-batch snapshots of each touched group's output (§7.1).
        let mut old_outputs: FxHashMap<Row, Option<(Row, AnnotId)>> = FxHashMap::default();
        if input.len() >= self.columnar_min {
            crate::obs::kernel::timed(crate::obs::KernelPath::Columnar, input.len(), || {
                self.apply_columnar(&input, total, &mut old_outputs, ctx)
            })?;
        } else {
            crate::obs::kernel::timed(crate::obs::KernelPath::Row, input.len(), || {
                self.apply_rowwise(&input, total, &mut old_outputs, ctx)
            })?;
        }
        ctx.metrics.groups_touched += old_outputs.len() as u64;
        // Emit Δ-old / Δ+new per touched group; drop dead groups.
        let mut out = DeltaBatch::new();
        for (key, old) in old_outputs {
            if let Some(st) = self.groups.get(&key) {
                if st.count < 0 {
                    return Err(CoreError::StateCorrupt(format!(
                        "group {key} has negative count {}",
                        st.count
                    )));
                }
                if st.frags.any_negative() {
                    return Err(CoreError::StateCorrupt(format!(
                        "group {key} has a negative fragment counter"
                    )));
                }
                if st.count == 0 && !self.global {
                    self.groups.remove(&key);
                }
            }
            let new = self.output_of(&key, total, ctx.pool);
            if old == new {
                continue; // group output unchanged, no delta
            }
            if let Some((row, annot)) = old {
                out.push(DeltaEntry {
                    row,
                    annot,
                    mult: -1,
                });
            }
            if let Some((row, annot)) = new {
                out.push(DeltaEntry {
                    row,
                    annot,
                    mult: 1,
                });
            }
        }
        Ok(out)
    }

    /// Row-at-a-time group maintenance (the fallback for small batches):
    /// one hash probe and one snapshot check per input row.
    fn apply_rowwise(
        &mut self,
        input: &DeltaBatch,
        total: usize,
        old_outputs: &mut FxHashMap<Row, Option<(Row, AnnotId)>>,
        ctx: &mut MaintCtx<'_>,
    ) -> Result<()> {
        for d in input {
            ctx.metrics.rows_processed += 1;
            let key: Row = self
                .group_by
                .iter()
                .map(|g| g.eval(&d.row))
                .collect::<std::result::Result<_, _>>()
                .map_err(imp_engine::EngineError::from)?;
            if !old_outputs.contains_key(&key) {
                let snap = self.output_of(&key, total, ctx.pool);
                old_outputs.insert(key.clone(), snap);
            }
            let st = self
                .groups
                .entry(key)
                .or_insert_with(|| GroupState::new(&self.aggs, self.minmax_buffer));
            apply_entry(st, d, &self.aggs, ctx)?;
        }
        Ok(())
    }

    /// Columnar group maintenance: the group keys of the whole batch are
    /// extracted into one contiguous key column in [`COLUMNAR_CHUNK`]-row
    /// windows, then a stable index sort makes equal keys adjacent and
    /// each run is applied to its group in one go — one hash lookup and
    /// one pre-batch snapshot per *distinct* group instead of per row.
    /// The stable order preserves each group's input order, so
    /// order-sensitive accumulator state (bounded MIN/MAX buffers)
    /// evolves exactly as under [`AggOp::apply_rowwise`].
    fn apply_columnar(
        &mut self,
        input: &DeltaBatch,
        total: usize,
        old_outputs: &mut FxHashMap<Row, Option<(Row, AnnotId)>>,
        ctx: &mut MaintCtx<'_>,
    ) -> Result<()> {
        ctx.metrics.rows_processed += input.len() as u64;
        // Pass 1 — chunked key extraction into a contiguous key column.
        let mut keys: Vec<Row> = Vec::with_capacity(input.len());
        for chunk in input.entries().chunks(COLUMNAR_CHUNK) {
            for d in chunk {
                keys.push(
                    self.group_by
                        .iter()
                        .map(|g| g.eval(&d.row))
                        .collect::<std::result::Result<_, _>>()
                        .map_err(imp_engine::EngineError::from)?,
                );
            }
        }
        // Pass 2 — sort-then-run-length group-by over the key column.
        let order = sort_keys_stable(&keys);
        for run in key_runs(&keys, &order) {
            let key = &keys[run[0] as usize];
            if !old_outputs.contains_key(key) {
                let snap = self.output_of(key, total, ctx.pool);
                old_outputs.insert(key.clone(), snap);
            }
            let st = self
                .groups
                .entry(key.clone())
                .or_insert_with(|| GroupState::new(&self.aggs, self.minmax_buffer));
            for &i in run {
                apply_entry(st, &input[i as usize], &self.aggs, ctx)?;
            }
        }
        Ok(())
    }

    /// Drop all group state.
    pub fn reset(&mut self) {
        self.groups.clear();
        if self.global {
            self.groups.insert(
                Row::new(vec![]),
                GroupState::new(&self.aggs, self.minmax_buffer),
            );
        }
        self.input.reset();
    }

    /// Input child (state persistence walks the tree).
    pub fn input_child(&self) -> &IncNode {
        &self.input
    }

    /// Mutable input child.
    pub fn input_child_mut(&mut self) -> &mut IncNode {
        &mut self.input
    }

    /// Number of groups currently tracked.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Serialize the group state (paper §2: operator state can be
    /// persisted in the database and restored later).
    pub fn encode_state(&self, buf: &mut bytes::BytesMut) {
        use imp_storage::codec::*;
        encode_u64(buf, self.groups.len() as u64);
        // Deterministic order for reproducible encodings.
        let mut keys: Vec<&Row> = self.groups.keys().collect();
        keys.sort();
        for key in keys {
            let st = &self.groups[key];
            encode_row(buf, key);
            encode_i64(buf, st.count);
            encode_u64(buf, st.frags.len() as u64);
            for (f, c) in st.frags.iter() {
                encode_u64(buf, f as u64);
                encode_i64(buf, c);
            }
            for acc in &st.accs {
                match acc {
                    IncAcc::Sum { sum, non_null } | IncAcc::Avg { sum, non_null } => {
                        let (i, f, isf) = sum.to_parts();
                        encode_i64(buf, i);
                        encode_f64(buf, f);
                        encode_u64(buf, isf as u64);
                        encode_i64(buf, *non_null);
                    }
                    IncAcc::Count { non_null } => encode_i64(buf, *non_null),
                    IncAcc::Min(o) | IncAcc::Max(o) => {
                        encode_u64(buf, o.truncated as u64);
                        encode_u64(buf, o.tree.len() as u64);
                        for (v, c) in &o.tree {
                            encode_value(buf, v);
                            encode_i64(buf, *c);
                        }
                    }
                }
            }
        }
    }

    /// Restore group state written by [`AggOp::encode_state`].
    pub fn decode_state(&mut self, buf: &mut bytes::Bytes) -> crate::Result<()> {
        use imp_storage::codec::*;
        self.groups.clear();
        let n = decode_u64(buf)?;
        for _ in 0..n {
            let key = decode_row(buf)?;
            let count = decode_i64(buf)?;
            let mut frags = FragCounts::new();
            let nf = decode_u64(buf)?;
            for _ in 0..nf {
                let f = decode_u64(buf)? as u32;
                let c = decode_i64(buf)?;
                frags.add(f, c);
            }
            let mut accs = Vec::with_capacity(self.aggs.len());
            for spec in &self.aggs {
                let acc = match spec.func {
                    AggFunc::Sum | AggFunc::Avg => {
                        let i = decode_i64(buf)?;
                        let f = decode_f64(buf)?;
                        let isf = decode_u64(buf)? != 0;
                        let non_null = decode_i64(buf)?;
                        let sum = NumAcc::from_parts(i, f, isf);
                        if spec.func == AggFunc::Sum {
                            IncAcc::Sum { sum, non_null }
                        } else {
                            IncAcc::Avg { sum, non_null }
                        }
                    }
                    AggFunc::Count => IncAcc::Count {
                        non_null: decode_i64(buf)?,
                    },
                    AggFunc::Min | AggFunc::Max => {
                        let truncated = decode_u64(buf)? != 0;
                        let len = decode_u64(buf)?;
                        let mut tree = BTreeMap::new();
                        for _ in 0..len {
                            let v = decode_value(buf)?;
                            let c = decode_i64(buf)?;
                            tree.insert(v, c);
                        }
                        let mut o = OrderedAcc::new(spec.func == AggFunc::Min, self.minmax_buffer);
                        o.tree = tree;
                        o.truncated = truncated;
                        if spec.func == AggFunc::Min {
                            IncAcc::Min(o)
                        } else {
                            IncAcc::Max(o)
                        }
                    }
                };
                accs.push(acc);
            }
            self.groups.insert(key, GroupState { count, frags, accs });
        }
        Ok(())
    }

    /// Heap footprint of the group state (Fig. 15/17).
    pub fn heap_size(&self) -> usize {
        let per_group: usize = self
            .groups
            .iter()
            .map(|(k, st)| {
                k.heap_size()
                    + st.frags.heap_size()
                    + st.accs.iter().map(IncAcc::heap_size).sum::<usize>()
                    + std::mem::size_of::<GroupState>()
            })
            .sum();
        per_group + self.input.heap_size()
    }
}

/// Apply one input entry to a group's state: tuple count, fragment
/// counters `ℱ_g`, and every accumulator. Shared by the row-wise and
/// columnar paths so both evolve the state identically.
fn apply_entry(
    st: &mut GroupState,
    d: &DeltaEntry,
    aggs: &[AggSpec],
    ctx: &mut MaintCtx<'_>,
) -> Result<()> {
    st.count += d.mult;
    for frag in ctx.pool.get(d.annot).iter_ones() {
        st.frags.add(frag as u32, d.mult);
    }
    for (acc, spec) in st.accs.iter_mut().zip(aggs) {
        let arg = match &spec.arg {
            Some(e) => Some(e.eval(&d.row).map_err(imp_engine::EngineError::from)?),
            None => None,
        };
        if acc.update(arg.as_ref(), d.mult)? {
            ctx.needs_recapture = true;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_acc_min_tracks_best() {
        let mut a = OrderedAcc::new(true, None);
        assert!(!a.update(&Value::Int(5), 1));
        assert!(!a.update(&Value::Int(3), 2));
        assert_eq!(a.best(), Some(&Value::Int(3)));
        assert!(!a.update(&Value::Int(3), -2));
        assert_eq!(a.best(), Some(&Value::Int(5)));
    }

    #[test]
    fn ordered_acc_bounded_recaptures_on_exhaustion() {
        // Keep 2 smallest; delete them all → recapture required.
        let mut a = OrderedAcc::new(true, Some(2));
        for v in [1, 2, 3, 4] {
            a.update(&Value::Int(v), 1);
        }
        assert_eq!(a.len(), 2);
        assert_eq!(a.best(), Some(&Value::Int(1)));
        assert!(!a.update(&Value::Int(1), -1));
        // Deleting the last stored value with evicted values outstanding.
        assert!(a.update(&Value::Int(2), -1));
    }

    #[test]
    fn ordered_acc_bounded_ignores_beyond_horizon_deletes() {
        let mut a = OrderedAcc::new(true, Some(2));
        for v in [1, 2, 3, 4] {
            a.update(&Value::Int(v), 1);
        }
        // 4 was evicted (beyond horizon 2): deleting it is a no-op.
        assert!(!a.update(&Value::Int(4), -1));
        assert_eq!(a.best(), Some(&Value::Int(1)));
    }

    #[test]
    fn ordered_acc_max_direction() {
        let mut a = OrderedAcc::new(false, Some(2));
        for v in [1, 2, 3, 4] {
            a.update(&Value::Int(v), 1);
        }
        assert_eq!(a.best(), Some(&Value::Int(4)));
        // stored {3,4}; 1 evicted; deleting 1 safe
        assert!(!a.update(&Value::Int(1), -1));
        assert!(!a.update(&Value::Int(4), -1));
        assert_eq!(a.best(), Some(&Value::Int(3)));
    }

    #[test]
    fn delete_of_never_inserted_value_flags_recapture() {
        let mut a = OrderedAcc::new(true, None);
        a.update(&Value::Int(1), 1);
        assert!(a.update(&Value::Int(9), -1));
    }
}
