//! Incremental top-k (paper §5.2.7) with bounded buffers (§7.2, §8.4.3).
//!
//! State is a nested ordered map: the outer map orders entries by the
//! ORDER BY key (`BTreeMap` standing in for the paper's balanced search
//! tree); the inner map stores, per key, the multiplicity of each
//! annotated tuple `⟨t, P⟩`. The paper computes deltas the simple way —
//! delete the previous top-k, insert the updated one ("as k is typically
//! relatively small, we select a simple approach") — here the old/new
//! diff is *incremental*: the previously emitted top-k is cached together
//! with its boundary key, a batch whose touched keys all sort strictly
//! beyond the boundary of a full top-k is recognised as a no-op without
//! walking the state, and otherwise a single ordered merge of the cached
//! old against the recomputed new emits only the entries that actually
//! changed (instead of `-old ∪ +new` plus a normalization pass).
//!
//! Annotations are stored as `Arc<BitVec>` handles from
//! [`AnnotPool::share`](imp_storage::AnnotPool::share) — O(1) to obtain,
//! no per-entry bitvector copies — and keyed by *content*, so entry order
//! is canonical and survives state eviction / restore even though pool
//! ids are reassigned when the state is re-interned.
//!
//! With a bounded buffer only the best `l ≥ k` entries are stored; if
//! deletions exhaust the buffer below `k`, the operator requests a full
//! recapture (§8.4.3: "if there are less than k groups stored in the
//! state, our IMP will fully maintain the sketches").

use super::{IncNode, MaintCtx};
use crate::delta::{DeltaBatch, DeltaEntry};
use crate::Result;
use imp_sql::plan::sort_key_values;
use imp_sql::SortKey;
use imp_storage::{AnnotPool, BitVec, Row, Value};
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::sync::Arc;

/// ORDER BY key with per-column direction baked into its `Ord`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderKey {
    vals: Vec<Value>,
    /// Ascending flags, parallel to `vals`.
    asc: Vec<bool>,
}

impl OrderKey {
    fn new(row: &Row, keys: &[SortKey]) -> OrderKey {
        OrderKey {
            vals: sort_key_values(row, keys),
            asc: keys.iter().map(|k| k.asc).collect(),
        }
    }
}

impl PartialOrd for OrderKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderKey {
    fn cmp(&self, other: &Self) -> Ordering {
        debug_assert_eq!(self.asc, other.asc);
        for ((a, b), asc) in self.vals.iter().zip(&other.vals).zip(&self.asc) {
            let ord = a.cmp(b);
            let ord = if *asc { ord } else { ord.reverse() };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    }
}

type Entries = BTreeMap<(Row, Arc<BitVec>), i64>;

/// The top-k emitted at the end of the previous batch (`τ_{k,O}(S)`),
/// cached so a batch does not start by re-walking the state tree.
#[derive(Debug)]
struct TopKCache {
    /// The clipped top-k entries in state-iteration order, each carrying
    /// its ORDER BY key so the merge-diff compares without re-deriving.
    rows: Vec<(OrderKey, Row, Arc<BitVec>, i64)>,
    /// ORDER BY key of the last included entry; `None` when empty.
    boundary: Option<OrderKey>,
    /// Total clipped multiplicity (`min(k, Σ state multiplicities)`).
    total: i64,
}

/// Incremental top-k operator.
#[derive(Debug)]
pub struct TopKOp {
    input: Box<IncNode>,
    keys: Vec<SortKey>,
    k: u64,
    state: BTreeMap<OrderKey, Entries>,
    /// Keep at most this many annotated tuples; `None` = unbounded.
    buffer: Option<usize>,
    truncated: bool,
    entries: usize,
    /// Cached previous top-k; `None` after reset / restore (recomputed
    /// from the state before the next batch is ingested).
    cache: Option<TopKCache>,
}

impl TopKOp {
    /// New top-k operator.
    pub fn new(input: IncNode, keys: Vec<SortKey>, k: u64, buffer: Option<usize>) -> TopKOp {
        TopKOp {
            input: Box::new(input),
            keys,
            k,
            state: BTreeMap::new(),
            buffer,
            truncated: false,
            entries: 0,
            cache: None,
        }
    }

    /// Current top-k: walk keys in order, tuples per key in deterministic
    /// order, clipping the boundary tuple's multiplicity (`τ_{k,O}`).
    /// Rows and annotations come back as O(1) shared handles.
    fn compute_topk(&self) -> TopKCache {
        let mut rows = Vec::new();
        let mut boundary = None;
        let mut remaining = self.k as i64;
        'outer: for (key, entries) in &self.state {
            for ((row, annot), m) in entries {
                if remaining <= 0 {
                    break 'outer;
                }
                let take = (*m).min(remaining);
                rows.push((key.clone(), row.clone(), Arc::clone(annot), take));
                boundary = Some(key.clone());
                remaining -= take;
            }
        }
        TopKCache {
            rows,
            boundary,
            total: self.k as i64 - remaining.max(0),
        }
    }

    /// Ordered merge-diff of the cached old top-k against the recomputed
    /// new one: emits `-m` for entries that left, `+m` for entries that
    /// entered, and the signed multiplicity change for entries present in
    /// both — nothing for the (typical) unchanged prefix. Both inputs are
    /// in state-iteration order (ORDER BY key, then `(row, annotation)`),
    /// so one linear pass suffices.
    fn diff_topk(&self, old: &TopKCache, new: &TopKCache, pool: &mut AnnotPool) -> DeltaBatch {
        let mut out = DeltaBatch::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < old.rows.len() || j < new.rows.len() {
            let ord = match (old.rows.get(i), new.rows.get(j)) {
                (Some((ok, or, oa, _)), Some((nk, nr, na, _))) => (ok, or, oa).cmp(&(nk, nr, na)),
                (Some(_), None) => Ordering::Less,
                (None, Some(_)) => Ordering::Greater,
                (None, None) => break,
            };
            match ord {
                Ordering::Less => {
                    let (_, row, annot, m) = &old.rows[i];
                    out.push(DeltaEntry {
                        row: row.clone(),
                        annot: pool.intern_arc(Arc::clone(annot)),
                        mult: -m,
                    });
                    i += 1;
                }
                Ordering::Greater => {
                    let (_, row, annot, m) = &new.rows[j];
                    out.push(DeltaEntry {
                        row: row.clone(),
                        annot: pool.intern_arc(Arc::clone(annot)),
                        mult: *m,
                    });
                    j += 1;
                }
                Ordering::Equal => {
                    let m = new.rows[j].3 - old.rows[i].3;
                    if m != 0 {
                        let (_, row, annot, _) = &new.rows[j];
                        out.push(DeltaEntry {
                            row: row.clone(),
                            annot: pool.intern_arc(Arc::clone(annot)),
                            mult: m,
                        });
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }

    /// Worst stored key (the truncation horizon).
    fn horizon(&self) -> Option<&OrderKey> {
        self.state.keys().next_back()
    }

    /// Process one batch.
    pub fn process(&mut self, ctx: &mut MaintCtx<'_>) -> Result<DeltaBatch> {
        let input = self.input.process(ctx)?;
        if input.is_empty() {
            return Ok(DeltaBatch::new());
        }
        // Old top-k: the cache when valid, else (fresh operator or state
        // just restored from the codec) one walk of the pre-batch state.
        let old_topk = match self.cache.take() {
            Some(c) => c,
            None => self.compute_topk(),
        };
        // A batch leaves the top-k untouched iff the old top-k was full
        // and every touched key sorts strictly beyond its boundary.
        let mut dirty = false;

        for d in input {
            ctx.metrics.rows_processed += 1;
            let key = OrderKey::new(&d.row, &self.keys);
            dirty = dirty
                || old_topk.total < self.k as i64
                || old_topk.boundary.as_ref().is_none_or(|b| key <= *b);
            let annot = ctx.pool.share(d.annot);
            if d.mult > 0 {
                if self.truncated && self.horizon().is_some_and(|h| key > *h) {
                    // Beyond the horizon of a truncated buffer: cannot be
                    // in the top-k before a recapture happens (same prefix
                    // invariant as the bounded MIN/MAX state).
                    continue;
                }
                let entries = self.state.entry(key).or_default();
                let slot = entries.entry((d.row, annot)).or_insert(0);
                if *slot == 0 {
                    self.entries += 1;
                }
                *slot += d.mult;
                // Evict past the buffer bound.
                if let Some(l) = self.buffer {
                    while self.entries > l {
                        let Some(mut last) = self.state.last_entry() else {
                            break;
                        };
                        let victims = last.get_mut();
                        victims.pop_last();
                        self.entries -= 1;
                        if victims.is_empty() {
                            last.remove();
                        }
                        self.truncated = true;
                    }
                }
            } else {
                // Deletion.
                let beyond = self.horizon().is_none_or(|h| key > *h);
                match self.state.get_mut(&key) {
                    Some(entries) => {
                        let slot_key = (d.row, annot);
                        match entries.get_mut(&slot_key) {
                            Some(slot) => {
                                *slot += d.mult;
                                if *slot <= 0 {
                                    let corrupt = *slot < 0;
                                    entries.remove(&slot_key);
                                    self.entries -= 1;
                                    if entries.is_empty() {
                                        self.state.remove(&key);
                                    }
                                    if corrupt {
                                        ctx.needs_recapture = true;
                                    }
                                }
                            }
                            None => {
                                if !(self.truncated && beyond) {
                                    ctx.needs_recapture = true;
                                }
                            }
                        }
                    }
                    None => {
                        if !(self.truncated && beyond) {
                            ctx.needs_recapture = true;
                        }
                    }
                }
            }
        }

        // Buffer exhausted below k with evicted entries outstanding?
        if self.truncated {
            let total: i64 = self.state.values().flat_map(|e| e.values()).sum();
            if total < self.k as i64 {
                ctx.needs_recapture = true;
            }
        }
        if ctx.needs_recapture {
            // The maintainer will bootstrap from scratch; the cache dies
            // with the state.
            self.cache = None;
            return Ok(DeltaBatch::new());
        }

        if !dirty {
            // Every touched key sorts beyond the boundary of a full
            // top-k: `τ_{k,O}(S′) = τ_{k,O}(S)` without walking the state.
            self.cache = Some(old_topk);
            return Ok(DeltaBatch::new());
        }

        // Δ-τ_k(S) ∪ Δ+τ_k(S′), emitted as an ordered merge-diff so only
        // the entries that changed re-enter the pool (an O(1) content
        // probe for already-known annotations, no bitvector copy).
        let new_topk = self.compute_topk();
        let out = self.diff_topk(&old_topk, &new_topk, ctx.pool);
        self.cache = Some(new_topk);
        Ok(out)
    }

    /// Drop all state.
    pub fn reset(&mut self) {
        self.state.clear();
        self.entries = 0;
        self.truncated = false;
        self.cache = None;
        self.input.reset();
    }

    /// Number of stored annotated tuples (`l` in §8.4.3 / Fig. 15).
    pub fn stored_entries(&self) -> usize {
        self.entries
    }

    /// Visit every annotation handle held by this operator's state (the
    /// shared-ownership-aware accounting walk; the diff cache only clones
    /// handles already present in the state).
    pub fn for_each_annot(&self, f: &mut dyn FnMut(&Arc<BitVec>)) {
        for entries in self.state.values() {
            for (_, annot) in entries.keys() {
                f(annot);
            }
        }
    }

    /// Input child (state persistence walks the tree).
    pub fn input_child(&self) -> &IncNode {
        &self.input
    }

    /// Mutable input child.
    pub fn input_child_mut(&mut self) -> &mut IncNode {
        &mut self.input
    }

    /// Serialize the top-k state (annotations by content, so the encoding
    /// is independent of pool id assignment).
    pub fn encode_state(&self, buf: &mut bytes::BytesMut) {
        use imp_storage::codec::*;
        encode_u64(buf, self.truncated as u64);
        encode_u64(buf, self.state.len() as u64);
        for (key, entries) in &self.state {
            encode_row(buf, &Row::new(key.vals.clone()));
            encode_u64(buf, entries.len() as u64);
            for ((row, annot), m) in entries {
                encode_row(buf, row);
                encode_bitvec(buf, annot);
                encode_i64(buf, *m);
            }
        }
    }

    /// Restore state written by [`TopKOp::encode_state`], re-interning
    /// every annotation into `pool` so restored state shares allocations
    /// (and ids) with the live pipeline.
    pub fn decode_state(
        &mut self,
        buf: &mut bytes::Bytes,
        pool: &mut AnnotPool,
    ) -> crate::Result<()> {
        use imp_storage::codec::*;
        self.state.clear();
        self.entries = 0;
        self.cache = None;
        self.truncated = decode_u64(buf)? != 0;
        let n = decode_u64(buf)?;
        let asc: Vec<bool> = self.keys.iter().map(|k| k.asc).collect();
        for _ in 0..n {
            let key_row = decode_row(buf)?;
            let key = OrderKey {
                vals: key_row.values().to_vec(),
                asc: asc.clone(),
            };
            let len = decode_u64(buf)?;
            let mut entries = Entries::new();
            for _ in 0..len {
                let row = decode_row(buf)?;
                let id = pool.intern(decode_bitvec(buf)?);
                entries.insert((row, pool.share(id)), decode_i64(buf)?);
                self.entries += 1;
            }
            self.state.insert(key, entries);
        }
        Ok(())
    }

    /// Heap footprint of this operator's own state (excludes children) —
    /// the quantity Fig. 13e/f plots against the buffer bound. Annotation
    /// *contents* are not counted here: every stored `Arc<BitVec>` comes
    /// from the maintainer's pool, whose `heap_size` already accounts for
    /// the bitvectors — only the per-entry handle overhead is ours.
    pub fn own_heap_size(&self) -> usize {
        let mut size = 0usize;
        for (key, entries) in &self.state {
            size += key.vals.len() * std::mem::size_of::<Value>()
                + key.vals.iter().map(Value::heap_size).sum::<usize>()
                + 48;
            for (row, _annot) in entries.keys() {
                size += row.heap_size() + std::mem::size_of::<Arc<BitVec>>() + 56;
            }
        }
        size
    }

    /// Heap footprint of the state (Fig. 15 memory plots).
    pub fn heap_size(&self) -> usize {
        self.own_heap_size() + self.input.heap_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_key_directions() {
        let keys = [
            SortKey {
                column: 0,
                asc: false,
            },
            SortKey {
                column: 1,
                asc: true,
            },
        ];
        let a = OrderKey::new(&imp_storage::row![5, 1], &keys);
        let b = OrderKey::new(&imp_storage::row![3, 0], &keys);
        // DESC on column 0: 5 sorts before 3.
        assert!(a < b);
        let c = OrderKey::new(&imp_storage::row![5, 0], &keys);
        assert!(c < a);
    }
}
