//! Incremental join / cross product (paper §5.2.4) with bloom-filter
//! delta pruning (§7.2).
//!
//! The paper's rule combines three terms over the *old* states:
//! `ΔQ₁ ⋈ Q₂(𝒟) ∪ Q₁(𝒟) ⋈ ΔQ₂ ∪ ΔQ₁ ⋈ ΔQ₂` with sign cases
//! (del×del → insert, del×ins → delete, …). The backend database is
//! already at the *new* state when maintenance runs, so we use the
//! equivalent rewriting over new states:
//!
//! ```text
//! Δ(Q₁ ⋈ Q₂) = ΔQ₁ ⋈ Q₂ᴺᴱᵂ + Q₁ᴺᴱᵂ ⋈ ΔQ₂ − ΔQ₁ ⋈ ΔQ₂
//! ```
//!
//! where signed multiplicities multiply (the sign cases fall out of the
//! algebra). The `Q ⋈ Δ` terms are "outsourced to the backend database"
//! (§1, §7): evaluating the non-delta side is a round trip counted in the
//! metrics; bloom filters on the join keys prune delta tuples without
//! partners and can skip the round trip entirely.
//!
//! Output annotations are produced by the memoized
//! [`AnnotPool::union`](imp_storage::AnnotPool::union): a delta tuple that
//! matches many partners in the same fragment combination pays for one
//! union, not one allocation per output row.

use super::{IncNode, MaintCtx};
use crate::delta::{DeltaBatch, DeltaEntry};
use crate::opt::BloomFilter;
use crate::Result;
use imp_sketch::capture::eval_annot;
use imp_sql::LogicalPlan;
use imp_storage::{FxHashMap, Row, Value};

/// Incremental join operator.
#[derive(Debug)]
pub struct JoinOp {
    left: Box<IncNode>,
    right: Box<IncNode>,
    left_plan: LogicalPlan,
    right_plan: LogicalPlan,
    left_keys: Vec<usize>,
    right_keys: Vec<usize>,
    /// Keys present on the left side (filters Δright).
    left_bloom: Option<BloomFilter>,
    /// Keys present on the right side (filters Δleft).
    right_bloom: Option<BloomFilter>,
    bloom_enabled: bool,
}

impl JoinOp {
    /// New join operator over two stateless inputs.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        left: IncNode,
        right: IncNode,
        left_plan: LogicalPlan,
        right_plan: LogicalPlan,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
        bloom_enabled: bool,
    ) -> JoinOp {
        JoinOp {
            left: Box::new(left),
            right: Box::new(right),
            left_plan,
            right_plan,
            left_keys,
            right_keys,
            left_bloom: None,
            right_bloom: None,
            // Bloom filters only make sense for equi-joins.
            bloom_enabled,
        }
    }

    /// Process one batch (see module docs for the delta rule).
    pub fn process(&mut self, ctx: &mut MaintCtx<'_>) -> Result<DeltaBatch> {
        let dl = self.left.process(ctx)?;
        let dr = self.right.process(ctx)?;
        if dl.is_empty() && dr.is_empty() {
            return Ok(DeltaBatch::new());
        }
        let use_bloom = self.bloom_enabled && !self.left_keys.is_empty();
        let mut out = DeltaBatch::new();

        // Evaluated sides are cached across terms within this batch.
        let mut left_side: Option<DeltaBatch> = None;
        let mut right_side: Option<DeltaBatch> = None;

        // Keep the bloom filters in sync *before* filtering: new keys from
        // this batch's deltas must be visible (no false negatives). Each
        // side's filter is built lazily, only once the *other* side has a
        // delta worth pruning — building it costs one scan of that side.
        if use_bloom {
            if !dl.is_empty() && self.right_bloom.is_none() {
                let side = eval_side(&self.right_plan, ctx)?;
                let mut bloom = BloomFilter::with_capacity(side.len());
                for e in &side {
                    if let Some(k) = key_of(&e.row, &self.right_keys) {
                        bloom.insert(&k);
                    }
                }
                self.right_bloom = Some(bloom);
                right_side = Some(side);
            }
            if !dr.is_empty() && self.left_bloom.is_none() {
                let side = eval_side(&self.left_plan, ctx)?;
                let mut bloom = BloomFilter::with_capacity(side.len());
                for e in &side {
                    if let Some(k) = key_of(&e.row, &self.left_keys) {
                        bloom.insert(&k);
                    }
                }
                self.left_bloom = Some(bloom);
                left_side = Some(side);
            }
            // The deltas are already part of the new table state, but the
            // blooms may predate them (they are insert-only summaries).
            if let Some(b) = self.right_bloom.as_mut() {
                for d in &dr {
                    if d.mult > 0 {
                        if let Some(k) = key_of(&d.row, &self.right_keys) {
                            b.insert(&k);
                        }
                    }
                }
            }
            if let Some(b) = self.left_bloom.as_mut() {
                for d in &dl {
                    if d.mult > 0 {
                        if let Some(k) = key_of(&d.row, &self.left_keys) {
                            b.insert(&k);
                        }
                    }
                }
            }
        }

        // Bloom-prune the deltas (only correct for equi-joins).
        let dl_f: DeltaBatch = match (&self.right_bloom, use_bloom) {
            (Some(b), true) => {
                let before = dl.len();
                let kept: DeltaBatch = dl
                    .iter()
                    .filter(|d| {
                        key_of(&d.row, &self.left_keys)
                            .map(|k| b.may_contain(&k))
                            .unwrap_or(false)
                    })
                    .cloned()
                    .collect();
                ctx.metrics.bloom_pruned += (before - kept.len()) as u64;
                kept
            }
            _ => dl.clone(),
        };
        let dr_f: DeltaBatch = match (&self.left_bloom, use_bloom) {
            (Some(b), true) => {
                let before = dr.len();
                let kept: DeltaBatch = dr
                    .iter()
                    .filter(|d| {
                        key_of(&d.row, &self.right_keys)
                            .map(|k| b.may_contain(&k))
                            .unwrap_or(false)
                    })
                    .cloned()
                    .collect();
                ctx.metrics.bloom_pruned += (before - kept.len()) as u64;
                kept
            }
            _ => dr.clone(),
        };

        // Term 1: ΔQ₁ ⋈ Q₂ᴺᴱᵂ — outsourced to the backend.
        if !dl_f.is_empty() {
            let side = match right_side.take() {
                Some(s) => s,
                None => eval_side(&self.right_plan, ctx)?,
            };
            ctx.metrics.rows_sent_to_db += dl_f.len() as u64;
            let table = build_hash(&side, &self.right_keys);
            for d in &dl_f {
                ctx.metrics.rows_processed += 1;
                let Some(k) = key_of(&d.row, &self.left_keys) else {
                    continue;
                };
                if let Some(matches) = table.get(&k) {
                    for r in matches {
                        out.push(DeltaEntry {
                            row: d.row.concat(&r.row),
                            annot: ctx.pool.union(d.annot, r.annot),
                            mult: d.mult * r.mult,
                        });
                    }
                }
            }
        }

        // Term 2: Q₁ᴺᴱᵂ ⋈ ΔQ₂.
        if !dr_f.is_empty() {
            let side = match left_side.take() {
                Some(s) => s,
                None => eval_side(&self.left_plan, ctx)?,
            };
            ctx.metrics.rows_sent_to_db += dr_f.len() as u64;
            let table = build_hash(&side, &self.left_keys);
            for d in &dr_f {
                ctx.metrics.rows_processed += 1;
                let Some(k) = key_of(&d.row, &self.right_keys) else {
                    continue;
                };
                if let Some(matches) = table.get(&k) {
                    for l in matches {
                        out.push(DeltaEntry {
                            row: l.row.concat(&d.row),
                            annot: ctx.pool.union(l.annot, d.annot),
                            mult: l.mult * d.mult,
                        });
                    }
                }
            }
        }

        // Term 3: − ΔQ₁ ⋈ ΔQ₂ (fully in memory).
        if !dl_f.is_empty() && !dr_f.is_empty() {
            let mut dr_hash: FxHashMap<Vec<Value>, Vec<&DeltaEntry>> = FxHashMap::default();
            for d in &dr_f {
                if let Some(k) = key_of(&d.row, &self.right_keys) {
                    dr_hash.entry(k).or_default().push(d);
                }
            }
            for d in &dl_f {
                let Some(k) = key_of(&d.row, &self.left_keys) else {
                    continue;
                };
                if let Some(matches) = dr_hash.get(&k) {
                    for r in matches {
                        out.push(DeltaEntry {
                            row: d.row.concat(&r.row),
                            annot: ctx.pool.union(d.annot, r.annot),
                            mult: -(d.mult * r.mult),
                        });
                    }
                }
            }
        }

        Ok(crate::delta::normalize_delta(out))
    }

    /// Left child (state persistence walks the tree).
    pub fn left_child(&self) -> &IncNode {
        &self.left
    }

    /// Right child.
    pub fn right_child(&self) -> &IncNode {
        &self.right
    }

    /// Mutable children.
    pub fn children_mut(&mut self) -> (&mut IncNode, &mut IncNode) {
        (&mut self.left, &mut self.right)
    }

    /// Drop bloom filters (rebuilt on next use).
    pub fn reset(&mut self) {
        self.left_bloom = None;
        self.right_bloom = None;
        self.left.reset();
        self.right.reset();
    }

    /// Heap footprint (bloom filters + children).
    pub fn heap_size(&self) -> usize {
        self.left_bloom.as_ref().map_or(0, BloomFilter::heap_size)
            + self.right_bloom.as_ref().map_or(0, BloomFilter::heap_size)
            + self.left.heap_size()
            + self.right.heap_size()
    }
}

/// Evaluate one (stateless) join side against the backend: a DB round trip.
/// The side's annotations are interned into the run's pool.
fn eval_side(plan: &LogicalPlan, ctx: &mut MaintCtx<'_>) -> Result<DeltaBatch> {
    ctx.metrics.db_roundtrips += 1;
    let mut scanned = 0u64;
    let bag = eval_annot(plan, ctx.db, ctx.pset, ctx.pool, &mut scanned)?;
    ctx.metrics.db_rows_scanned += scanned;
    Ok(bag)
}

fn key_of(row: &Row, keys: &[usize]) -> Option<Vec<Value>> {
    // Cross product: empty key joins everything.
    let mut k = Vec::with_capacity(keys.len());
    for &i in keys {
        let v = row[i].clone();
        if v.is_null() {
            return None;
        }
        k.push(v);
    }
    Some(k)
}

fn build_hash<'a>(
    side: &'a DeltaBatch,
    keys: &[usize],
) -> FxHashMap<Vec<Value>, Vec<&'a DeltaEntry>> {
    let mut table: FxHashMap<Vec<Value>, Vec<&DeltaEntry>> = FxHashMap::default();
    for entry in side.iter() {
        if let Some(k) = key_of(&entry.row, keys) {
            table.entry(k).or_default().push(entry);
        }
    }
    table
}
