//! Incremental join / cross product (paper §5.2.4) with bloom-filter
//! delta pruning (§7.2) and delta-maintained side indexes.
//!
//! The paper's rule combines three terms over the *old* states:
//! `ΔQ₁ ⋈ Q₂(𝒟) ∪ Q₁(𝒟) ⋈ ΔQ₂ ∪ ΔQ₁ ⋈ ΔQ₂` with sign cases
//! (del×del → insert, del×ins → delete, …). The backend database is
//! already at the *new* state when maintenance runs, so we use the
//! equivalent rewriting over new states:
//!
//! ```text
//! Δ(Q₁ ⋈ Q₂) = ΔQ₁ ⋈ Q₂ᴺᴱᵂ + Q₁ᴺᴱᵂ ⋈ ΔQ₂ − ΔQ₁ ⋈ ΔQ₂
//! ```
//!
//! where signed multiplicities multiply (the sign cases fall out of the
//! algebra).
//!
//! # Side indexes: `Q ⋈ Δ` without round trips
//!
//! The `Q ⋈ Δ` terms are "outsourced to the backend database" (§1, §7):
//! evaluating the non-delta side is a round trip counted in the metrics.
//! Instead of paying it per batch, each side is materialised on first use
//! as a [`JoinSideIndex`] — one round trip — and then maintained *in
//! place*: the operator already holds exactly the delta that separates
//! the side's states (`Q₂ᴺᴱᵂ = Q₂ᴼᴸᴰ + ΔQ₂`), so each batch first
//! absorbs the children's own deltas into their indexes (bringing them to
//! the new state the rewriting above expects; an index built this batch
//! comes from a new-state evaluation and already includes the delta) and
//! then probes them for Terms 1/2. Steady-state join maintenance is
//! thereby O(|Δ|) amortized with **zero** backend round trips.
//!
//! The indexes are memory-bounded by `OpConfig::join_index_budget`
//! (annotated tuples per side): a side over budget is dropped and the
//! operator falls back to the per-batch outsourced evaluation until the
//! next recapture, mirroring the bounded MIN/MAX state's fallback. Index
//! state is persisted/restored through `state_codec` (annotations by
//! content, re-interned on restore) and accounted in [`JoinOp::heap_size`].
//!
//! # Bloom filters
//!
//! Bloom filters on the join keys prune delta tuples without partners
//! and can skip an outsourced round trip entirely; with an index present
//! they are rebuilt from its keys without touching the backend, and both
//! are dropped together on [`JoinOp::reset`]. The filters summarise keys
//! of *both* insert and delete deltas: a delete's key on one side must
//! stay visible to the other side's delta, otherwise the Term 3
//! cancellation `− ΔQ₁ ⋈ ΔQ₂` is silently lost while Term 1/2 still emit
//! the matching signed rows — wrong multiplicities and a wrong sketch.
//!
//! Output annotations are produced by the memoized
//! [`AnnotPool::union`](imp_storage::AnnotPool::union): a delta tuple that
//! matches many partners in the same fragment combination pays for one
//! union, not one allocation per output row.

use super::{IncNode, MaintCtx, OpConfig};
use crate::delta::{DeltaBatch, DeltaEntry};
use crate::obs::trace;
use crate::opt::side_index::key_of;
use crate::opt::{BloomFilter, JoinSideIndex};
use crate::Result;
use imp_sketch::capture::eval_annot;
use imp_sql::LogicalPlan;
use imp_storage::{FxHashMap, Value, COLUMNAR_CHUNK};
use std::sync::Arc;

/// One side's extracted join-key column: `col[i]` is the key of delta row
/// `i`, `None` for NULL keys (which never join).
type KeyColumn = Vec<Option<Vec<Value>>>;

/// Columnar key extraction: project a whole delta's join keys into one
/// contiguous key column, walked in [`COLUMNAR_CHUNK`]-row windows. Every
/// consumer of the batch (bloom maintenance, pruning, the three join
/// terms) reads this column instead of re-projecting rows.
fn extract_keys(delta: &DeltaBatch, keys: &[usize]) -> KeyColumn {
    let mut out = Vec::with_capacity(delta.len());
    for chunk in delta.entries().chunks(COLUMNAR_CHUNK) {
        out.extend(chunk.iter().map(|d| key_of(&d.row, keys)));
    }
    out
}

/// Lifecycle of one side's materialised index.
#[derive(Debug, Default)]
enum SideState {
    /// Not yet built (first use builds it from one round trip).
    #[default]
    Absent,
    /// Live and maintained from the side's own deltas.
    Ready(JoinSideIndex),
    /// Outgrew the budget: per-batch outsourced evaluation until the next
    /// [`JoinOp::reset`] (rebuilding would exhaust the budget again).
    Disabled,
}

impl SideState {
    fn ready(&self) -> Option<&JoinSideIndex> {
        match self {
            SideState::Ready(idx) => Some(idx),
            _ => None,
        }
    }
}

/// Incremental join operator.
#[derive(Debug)]
pub struct JoinOp {
    left: Box<IncNode>,
    right: Box<IncNode>,
    left_plan: LogicalPlan,
    right_plan: LogicalPlan,
    left_keys: Vec<usize>,
    right_keys: Vec<usize>,
    /// Keys present on the left side (filters Δright).
    left_bloom: Option<BloomFilter>,
    /// Keys present on the right side (filters Δleft).
    right_bloom: Option<BloomFilter>,
    bloom_enabled: bool,
    /// Materialised left side (probed by Term 2).
    left_index: SideState,
    /// Materialised right side (probed by Term 1).
    right_index: SideState,
    /// Max annotated tuples per side index; `None` disables the indexes.
    index_budget: Option<usize>,
    /// Columnar-normalize crossover for the output batch.
    columnar_min: usize,
}

impl JoinOp {
    /// New join operator over two stateless inputs.
    pub fn new(
        left: IncNode,
        right: IncNode,
        left_plan: LogicalPlan,
        right_plan: LogicalPlan,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
        config: &OpConfig,
    ) -> JoinOp {
        JoinOp {
            left: Box::new(left),
            right: Box::new(right),
            left_plan,
            right_plan,
            left_keys,
            right_keys,
            left_bloom: None,
            right_bloom: None,
            // Bloom filters only make sense for equi-joins.
            bloom_enabled: config.bloom,
            left_index: SideState::Absent,
            right_index: SideState::Absent,
            index_budget: config.join_index_budget,
            columnar_min: config.columnar_min,
        }
    }

    /// Process one batch (see module docs for the delta rule).
    pub fn process(&mut self, ctx: &mut MaintCtx<'_>) -> Result<DeltaBatch> {
        let dl = self.left.process(ctx)?;
        let dr = self.right.process(ctx)?;
        if dl.is_empty() && dr.is_empty() {
            return Ok(DeltaBatch::new());
        }
        let _span = trace::span("join_delta");
        let use_bloom = self.bloom_enabled && !self.left_keys.is_empty();
        let mut out = DeltaBatch::new();

        // Evaluated sides are cached across uses within this batch; the
        // flags record whether the side's round trip already happened
        // this batch (round trips "avoided" by an index are only counted
        // when no evaluation of that side occurred at all).
        let mut left_side: Option<DeltaBatch> = None;
        let mut right_side: Option<DeltaBatch> = None;
        let mut left_evaluated = false;
        let mut right_evaluated = false;

        // Bring the side indexes to the new state (`Qᴺᴱᵂ = Qᴼᴸᴰ + ΔQ`)
        // before any term is computed: an existing index absorbs its own
        // child's *unfiltered* delta; an absent index is built lazily,
        // only once the other side has a delta that will probe it — the
        // build evaluates the side at the new state, so the current delta
        // is already included.
        sync_index(
            &mut self.left_index,
            &dl,
            !dr.is_empty(),
            &self.left_plan,
            &self.left_keys,
            self.index_budget,
            &mut left_side,
            &mut left_evaluated,
            ctx,
        )?;
        sync_index(
            &mut self.right_index,
            &dr,
            !dl.is_empty(),
            &self.right_plan,
            &self.right_keys,
            self.index_budget,
            &mut right_side,
            &mut right_evaluated,
            ctx,
        )?;

        // Columnar key extraction — each delta's join keys are projected
        // once into a contiguous key column shared by bloom maintenance,
        // pruning, and all three terms below.
        let dl_keys = extract_keys(&dl, &self.left_keys);
        let dr_keys = extract_keys(&dr, &self.right_keys);

        // Keep the bloom filters in sync *before* filtering: new keys from
        // this batch's deltas must be visible (no false negatives). Each
        // side's filter is built lazily, only once the *other* side has a
        // delta worth pruning — from the side's index when one is live
        // (no round trip), otherwise from one scan of that side.
        if use_bloom {
            if !dl.is_empty() && self.right_bloom.is_none() {
                self.right_bloom = Some(build_bloom(
                    self.right_index.ready(),
                    &self.right_plan,
                    &self.right_keys,
                    &mut right_side,
                    &mut right_evaluated,
                    ctx,
                )?);
            }
            if !dr.is_empty() && self.left_bloom.is_none() {
                self.left_bloom = Some(build_bloom(
                    self.left_index.ready(),
                    &self.left_plan,
                    &self.left_keys,
                    &mut left_side,
                    &mut left_evaluated,
                    ctx,
                )?);
            }
            // The deltas are already part of the new table state, but the
            // blooms may predate them. Keys of *deletions* are inserted
            // too: the other side's delta needs them to survive pruning so
            // Term 3 can cancel (a bloom is insert-only either way — a
            // stale positive only costs a wasted probe).
            if let Some(b) = self.right_bloom.as_mut() {
                for k in dr_keys.iter().flatten() {
                    b.insert(k);
                }
            }
            if let Some(b) = self.left_bloom.as_mut() {
                for k in dl_keys.iter().flatten() {
                    b.insert(k);
                }
            }
        }

        // Bloom-prune the deltas (only correct for equi-joins). The key
        // column is filtered in lockstep so the terms keep index-aligned
        // keys without re-extraction.
        let (dl_f, dl_fk) = bloom_filter_delta(&dl, dl_keys, &self.right_bloom, use_bloom, ctx);
        let (dr_f, dr_fk) = bloom_filter_delta(&dr, dr_keys, &self.left_bloom, use_bloom, ctx);

        // Term 1: ΔQ₁ ⋈ Q₂ᴺᴱᵂ — answered by the right index, or
        // outsourced to the backend when none is live.
        if !dl_f.is_empty() {
            let _span = trace::span("join_probe_right");
            if let Some(idx) = self.right_index.ready() {
                ctx.metrics.join_index_probes += dl_f.len() as u64;
                if !right_evaluated {
                    ctx.metrics.db_roundtrips_avoided += 1;
                }
                probe_index(&dl_f, &dl_fk, idx, false, &mut out, ctx);
            } else {
                let side = match right_side.take() {
                    Some(s) => s,
                    None => {
                        ctx.metrics.rows_sent_to_db += dl_f.len() as u64;
                        eval_side(&self.right_plan, ctx)?
                    }
                };
                let table = build_hash(&side, &self.right_keys);
                probe_hash(&dl_f, &dl_fk, &table, false, &mut out, ctx);
            }
        }

        // Term 2: Q₁ᴺᴱᵂ ⋈ ΔQ₂.
        if !dr_f.is_empty() {
            let _span = trace::span("join_probe_left");
            if let Some(idx) = self.left_index.ready() {
                ctx.metrics.join_index_probes += dr_f.len() as u64;
                if !left_evaluated {
                    ctx.metrics.db_roundtrips_avoided += 1;
                }
                probe_index(&dr_f, &dr_fk, idx, true, &mut out, ctx);
            } else {
                let side = match left_side.take() {
                    Some(s) => s,
                    None => {
                        ctx.metrics.rows_sent_to_db += dr_f.len() as u64;
                        eval_side(&self.left_plan, ctx)?
                    }
                };
                let table = build_hash(&side, &self.left_keys);
                probe_hash(&dr_f, &dr_fk, &table, true, &mut out, ctx);
            }
        }

        // Term 3: − ΔQ₁ ⋈ ΔQ₂ (fully in memory). The build side hashes
        // *references into* the right key column and stores row indexes —
        // no key is cloned or re-projected on either side.
        if !dl_f.is_empty() && !dr_f.is_empty() {
            let _span = trace::span("join_delta_delta");
            let mut dr_hash: FxHashMap<&Vec<Value>, Vec<u32>> = FxHashMap::default();
            for (i, k) in dr_fk.iter().enumerate() {
                if let Some(k) = k {
                    dr_hash.entry(k).or_default().push(i as u32);
                }
            }
            for (d, k) in dl_f.iter().zip(&dl_fk) {
                let Some(k) = k else {
                    continue;
                };
                if let Some(matches) = dr_hash.get(k) {
                    for &i in matches {
                        let r = &dr_f[i as usize];
                        out.push(DeltaEntry {
                            row: d.row.concat(&r.row),
                            annot: ctx.pool.union(d.annot, r.annot),
                            mult: -(d.mult * r.mult),
                        });
                    }
                }
            }
        }

        Ok(crate::delta::normalize_delta_with(out, self.columnar_min))
    }

    /// Left child (state persistence walks the tree).
    pub fn left_child(&self) -> &IncNode {
        &self.left
    }

    /// Right child.
    pub fn right_child(&self) -> &IncNode {
        &self.right
    }

    /// Mutable children.
    pub fn children_mut(&mut self) -> (&mut IncNode, &mut IncNode) {
        (&mut self.left, &mut self.right)
    }

    /// Drop bloom filters and side indexes together (both summarise the
    /// same side states; a recapture rebuilds both on next use, giving a
    /// previously over-budget side a fresh chance).
    pub fn reset(&mut self) {
        self.left_bloom = None;
        self.right_bloom = None;
        self.left_index = SideState::Absent;
        self.right_index = SideState::Absent;
        self.left.reset();
        self.right.reset();
    }

    /// Visit every annotation handle held by this operator's own state
    /// (the shared-ownership-aware accounting walk over the side indexes).
    pub fn for_each_annot(&self, f: &mut dyn FnMut(&std::sync::Arc<imp_storage::BitVec>)) {
        for idx in [self.left_index.ready(), self.right_index.ready()]
            .into_iter()
            .flatten()
        {
            idx.for_each_annot(f);
        }
    }

    /// `(entries, bytes)` of this operator's own side indexes.
    pub fn index_state(&self) -> (usize, usize) {
        let mut entries = 0;
        let mut bytes = 0;
        for idx in [self.left_index.ready(), self.right_index.ready()]
            .into_iter()
            .flatten()
        {
            entries += idx.len();
            bytes += idx.heap_size();
        }
        (entries, bytes)
    }

    /// Serialize the side indexes (blooms are rebuilt lazily instead).
    pub fn encode_state(&self, buf: &mut bytes::BytesMut) {
        for state in [&self.left_index, &self.right_index] {
            match state {
                SideState::Absent => imp_storage::codec::encode_u64(buf, 0),
                SideState::Ready(idx) => {
                    imp_storage::codec::encode_u64(buf, 1);
                    idx.encode_state(buf);
                }
                SideState::Disabled => imp_storage::codec::encode_u64(buf, 2),
            }
        }
    }

    /// Restore state written by [`JoinOp::encode_state`], re-interning
    /// the indexed annotations into `pool`.
    pub fn decode_state(
        &mut self,
        buf: &mut bytes::Bytes,
        pool: &mut imp_storage::AnnotPool,
    ) -> Result<()> {
        for side in [&mut self.left_index, &mut self.right_index] {
            *side = match imp_storage::codec::decode_u64(buf)? {
                0 => SideState::Absent,
                1 => SideState::Ready(JoinSideIndex::decode_state(buf, pool)?),
                2 => SideState::Disabled,
                tag => {
                    return Err(crate::error::CoreError::Codec(format!(
                        "invalid join-side index tag {tag}"
                    )))
                }
            };
        }
        Ok(())
    }

    /// Heap footprint (bloom filters + side indexes + children).
    pub fn heap_size(&self) -> usize {
        self.left_bloom.as_ref().map_or(0, BloomFilter::heap_size)
            + self.right_bloom.as_ref().map_or(0, BloomFilter::heap_size)
            + self.index_state().1
            + self.left.heap_size()
            + self.right.heap_size()
    }
}

/// Bring one side's index to the new state: apply the side's own delta to
/// a live index (dropping it when it outgrows the budget), or build it
/// from one new-state evaluation when `probed` and not yet materialised.
#[allow(clippy::too_many_arguments)]
fn sync_index(
    state: &mut SideState,
    delta: &DeltaBatch,
    probed: bool,
    plan: &LogicalPlan,
    keys: &[usize],
    budget: Option<usize>,
    cache: &mut Option<DeltaBatch>,
    evaluated: &mut bool,
    ctx: &mut MaintCtx<'_>,
) -> Result<()> {
    match state {
        SideState::Ready(_) if delta.is_empty() => {}
        SideState::Ready(idx) => {
            idx.apply(delta, keys, ctx.pool);
            if budget.is_some_and(|b| idx.len() > b) {
                *state = SideState::Disabled;
            }
        }
        SideState::Absent if probed && budget.is_some() => {
            let side = eval_side(plan, ctx)?;
            *evaluated = true;
            // Budget the *merged* index size, not the raw evaluation:
            // NULL-keyed rows are excluded and duplicates fold, so the
            // index can fit where the bag would not.
            let idx = JoinSideIndex::build(&side, keys, ctx.pool);
            if budget.is_some_and(|b| idx.len() > b) {
                *state = SideState::Disabled;
            } else {
                ctx.metrics.join_index_builds += 1;
                *state = SideState::Ready(idx);
            }
            *cache = Some(side);
        }
        _ => {}
    }
    Ok(())
}

/// Build one side's bloom filter: from a live index's keys (free), or
/// from one evaluation of the side (cached for the terms).
fn build_bloom(
    index: Option<&JoinSideIndex>,
    plan: &LogicalPlan,
    keys: &[usize],
    cache: &mut Option<DeltaBatch>,
    evaluated: &mut bool,
    ctx: &mut MaintCtx<'_>,
) -> Result<BloomFilter> {
    if let Some(idx) = index {
        let mut bloom = BloomFilter::with_capacity(idx.len());
        for k in idx.keys() {
            bloom.insert(k);
        }
        return Ok(bloom);
    }
    let side = match cache.take() {
        Some(s) => s,
        None => {
            let s = eval_side(plan, ctx)?;
            *evaluated = true;
            s
        }
    };
    let mut bloom = BloomFilter::with_capacity(side.len());
    for e in &side {
        if let Some(k) = key_of(&e.row, keys) {
            bloom.insert(&k);
        }
    }
    *cache = Some(side);
    Ok(bloom)
}

/// Keep only delta rows whose key might have a partner on the other side.
/// The pre-extracted key column is filtered in lockstep with the batch so
/// surviving entries keep their index-aligned keys.
fn bloom_filter_delta(
    delta: &DeltaBatch,
    keys_col: KeyColumn,
    other_bloom: &Option<BloomFilter>,
    use_bloom: bool,
    ctx: &mut MaintCtx<'_>,
) -> (DeltaBatch, KeyColumn) {
    match (other_bloom, use_bloom) {
        (Some(b), true) => {
            let before = delta.len();
            let mut kept = DeltaBatch::new();
            let mut kept_keys = KeyColumn::new();
            for (d, k) in delta.iter().zip(keys_col) {
                if k.as_ref().is_some_and(|k| b.may_contain(k)) {
                    kept.push(d.clone());
                    kept_keys.push(k);
                }
            }
            ctx.metrics.bloom_pruned += (before - kept.len()) as u64;
            (kept, kept_keys)
        }
        _ => (delta.clone(), keys_col),
    }
}

/// Probe a side index with a (filtered) delta, emitting one signed output
/// row per match. `side_on_left` orders the concatenation: Term 2 places
/// the indexed (left) side first.
fn probe_index(
    delta: &DeltaBatch,
    keys_col: &KeyColumn,
    index: &JoinSideIndex,
    side_on_left: bool,
    out: &mut DeltaBatch,
    ctx: &mut MaintCtx<'_>,
) {
    // Intern each distinct entry annotation once per probe, not once per
    // (delta row × match): the handles are shared `Arc`s, so pointer
    // identity stands in for the content hash after the first sighting.
    let mut interned: FxHashMap<usize, imp_storage::AnnotId> = FxHashMap::default();
    for (d, k) in delta.iter().zip(keys_col) {
        ctx.metrics.rows_processed += 1;
        let Some(k) = k else {
            continue;
        };
        let Some(matches) = index.get(k) else {
            continue;
        };
        for e in matches {
            let ptr = Arc::as_ptr(&e.annot) as usize;
            let ea = match interned.get(&ptr) {
                Some(&id) => id,
                None => {
                    let id = ctx.pool.intern_arc(Arc::clone(&e.annot));
                    interned.insert(ptr, id);
                    id
                }
            };
            let row = if side_on_left {
                e.row.concat(&d.row)
            } else {
                d.row.concat(&e.row)
            };
            out.push(DeltaEntry {
                row,
                annot: ctx.pool.union(d.annot, ea),
                mult: d.mult * e.mult,
            });
        }
    }
}

/// Probe an evaluated side's hash table with a (filtered) delta — the
/// outsourced-fallback twin of [`probe_index`], same `side_on_left`
/// contract.
fn probe_hash(
    delta: &DeltaBatch,
    keys_col: &KeyColumn,
    table: &FxHashMap<Vec<Value>, Vec<&DeltaEntry>>,
    side_on_left: bool,
    out: &mut DeltaBatch,
    ctx: &mut MaintCtx<'_>,
) {
    for (d, k) in delta.iter().zip(keys_col) {
        ctx.metrics.rows_processed += 1;
        let Some(k) = k else {
            continue;
        };
        let Some(matches) = table.get(k) else {
            continue;
        };
        for e in matches {
            let row = if side_on_left {
                e.row.concat(&d.row)
            } else {
                d.row.concat(&e.row)
            };
            out.push(DeltaEntry {
                row,
                annot: ctx.pool.union(d.annot, e.annot),
                mult: d.mult * e.mult,
            });
        }
    }
}

/// Evaluate one (stateless) join side against the backend: a DB round trip.
/// The side's annotations are interned into the run's pool. Shared with
/// the n-ary operator, whose inputs follow the same contract.
pub(super) fn eval_side(plan: &LogicalPlan, ctx: &mut MaintCtx<'_>) -> Result<DeltaBatch> {
    ctx.metrics.db_roundtrips += 1;
    let mut scanned = 0u64;
    let bag = eval_annot(plan, ctx.db, ctx.pset, ctx.pool, &mut scanned)?;
    ctx.metrics.db_rows_scanned += scanned;
    Ok(bag)
}

fn build_hash<'a>(
    side: &'a DeltaBatch,
    keys: &[usize],
) -> FxHashMap<Vec<Value>, Vec<&'a DeltaEntry>> {
    let mut table: FxHashMap<Vec<Value>, Vec<&DeltaEntry>> = FxHashMap::default();
    for entry in side.iter() {
        if let Some(k) = key_of(&entry.row, keys) {
            table.entry(k).or_default().push(entry);
        }
    }
    table
}
