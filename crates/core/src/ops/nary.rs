//! N-ary incremental equi-join: one operator maintaining
//! `Δ(R₁ ⋈ … ⋈ Rₙ)` without intermediate pair state.
//!
//! # The telescoping n-ary delta rule
//!
//! The binary rule of [`super::join`] generalizes by inclusion–exclusion,
//! but the 2ⁿ−1 signed terms collapse into n all-positive terms once each
//! input is read at a *mixed* frontier — inputs left of the current term
//! at their new state, inputs right of it at their old state:
//!
//! ```text
//! Δ(⋈ᵢ Rᵢ) = Σᵢ  R₁ᴺᴱᵂ ⋈ … ⋈ Rᵢ₋₁ᴺᴱᵂ ⋈ ΔRᵢ ⋈ Rᵢ₊₁ᴼᴸᴰ ⋈ … ⋈ Rₙᴼᴸᴰ
//! ```
//!
//! (Substitute `Rᴺᴱᵂ = Rᴼᴸᴰ + ΔR` term by term and the cross terms
//! telescope; for n = 2 this is exactly
//! `ΔR₁ ⋈ R₂ᴼᴸᴰ + R₁ᴺᴱᵂ ⋈ ΔR₂ = ΔR₁ ⋈ R₂ᴺᴱᵂ + R₁ᴺᴱᵂ ⋈ ΔR₂ − ΔR₁ ⋈ ΔR₂`,
//! the paper's three-term rule.) Signed multiplicities multiply, so
//! high-churn retraction batches flow through the same n terms: a delete
//! meeting a delete inserts, and a same-batch insert+delete pair cancels
//! in the final normalize *inside* this operator — parents never see the
//! churn (Δ⋈Δ annihilation).
//!
//! The operator walks the terms in input order and absorbs `ΔRᵢ` into
//! input i's [`NarySideIndex`] immediately *after* term i — so indexes
//! left of the cursor are at the new state and indexes right of it still
//! at the old state, exactly the frontier the rule reads. No upfront
//! sync, no state copies. An index first built mid-batch (one backend
//! evaluation, which always sees the *new* table state) is rewound to
//! the old state with a negated delta when its own term is still ahead.
//!
//! # Leapfrog-style probing, no pair state
//!
//! Each term seeds partial tuples from `ΔRᵢ` and extends them one input
//! at a time along a precomputed greedy order (next input with all join
//! classes bound, else the most bound classes, else — a disconnected
//! cross-product component — a full index scan). Every extension probes
//! that input's per-input index with the classes bound so far, in the
//! spirit of leapfrog triejoin's variable-at-a-time expansion (hash
//! indexes standing in for sorted tries). The only operator state is the
//! n per-input indexes: nothing materialises `R₁ ⋈ R₂` or any other
//! intermediate pair, so deep plans carry no pair-state heap at all.
//!
//! Bloom filters are not used on this path: every probe is an in-memory
//! hash lookup already, so there is no outsourced round trip for a bloom
//! to save (the binary fallback keeps its blooms for exactly that
//! reason).

use super::{IncNode, MaintCtx, OpConfig};
use crate::delta::{DeltaBatch, DeltaEntry};
use crate::error::CoreError;
use crate::obs::trace;
use crate::opt::nary_index::{ClassSpec, NarySideIndex};
use crate::Result;
use imp_sql::plan::NaryJoin;
use imp_sql::LogicalPlan;
use imp_storage::{AnnotId, FxHashMap, Row, Value};
use std::sync::Arc;

/// Lifecycle of one input's materialised index (mirrors the binary
/// operator's side states).
#[derive(Debug, Default)]
enum InputState {
    /// Not yet built (first probe builds it from one round trip).
    #[default]
    Absent,
    /// Live and maintained from the input's own deltas.
    Ready(NarySideIndex),
    /// Outgrew the budget: per-batch transient evaluation until the next
    /// [`NaryJoinOp::reset`].
    Disabled,
}

impl InputState {
    fn ready(&self) -> Option<&NarySideIndex> {
        match self {
            InputState::Ready(idx) => Some(idx),
            _ => None,
        }
    }
}

/// A partial join tuple mid-extension: the rows matched so far (slot per
/// input), the class values bound so far, and the running annotation /
/// signed multiplicity.
#[derive(Clone)]
struct Partial {
    parts: Vec<Option<Row>>,
    bound: Vec<Option<Value>>,
    annot: AnnotId,
    mult: i64,
}

/// Incremental n-ary equi-join operator over a canonicalized
/// [`NaryJoin`] (see [`imp_sql::plan::flatten_join`]).
#[derive(Debug)]
pub struct NaryJoinOp {
    children: Vec<IncNode>,
    plans: Vec<LogicalPlan>,
    /// Per input: the join classes it participates in.
    specs: Vec<ClassSpec>,
    n_classes: usize,
    states: Vec<InputState>,
    /// Greedy extension order per seeding input.
    orders: Vec<Vec<usize>>,
    index_budget: Option<usize>,
    columnar_min: usize,
    /// Probes against each input's index, last completed batch.
    probes_last: Vec<u64>,
    /// Probes against each input's index, cumulative since build/reset.
    probes_total: Vec<u64>,
}

impl NaryJoinOp {
    /// Compile a canonical n-ary join. Every input must be stateless
    /// (checked by the caller for the whole subtree, same contract as
    /// the binary operator).
    pub fn new(nary: &NaryJoin, config: &OpConfig) -> Result<NaryJoinOp> {
        let n = nary.inputs.len();
        let children = nary
            .inputs
            .iter()
            .map(|p| IncNode::build(p, config))
            .collect::<Result<Vec<_>>>()?;
        let mut specs: Vec<ClassSpec> = vec![Vec::new(); n];
        for (class, members) in nary.classes.iter().enumerate() {
            for &(input, col) in members {
                let spec = &mut specs[input];
                match spec.iter_mut().find(|(c, _)| *c == class) {
                    Some((_, cols)) => cols.push(col),
                    None => spec.push((class, vec![col])),
                }
            }
        }
        let orders = extension_orders(n, &specs);
        Ok(NaryJoinOp {
            children,
            plans: nary.inputs.clone(),
            specs,
            n_classes: nary.classes.len(),
            states: (0..n).map(|_| InputState::Absent).collect(),
            orders,
            index_budget: config.join_index_budget,
            columnar_min: config.columnar_min,
            probes_last: vec![0; n],
            probes_total: vec![0; n],
        })
    }

    /// Number of join inputs.
    pub fn arity(&self) -> usize {
        self.children.len()
    }

    /// Canonical shape signature: input plans plus equivalence classes
    /// (shape-equivalence tests compare these across parse trees).
    pub fn signature(&self) -> String {
        let inputs: Vec<String> = self
            .plans
            .iter()
            .map(|p| p.explain().replace('\n', " "))
            .collect();
        format!(
            "nary{}[{}] specs={:?}",
            self.arity(),
            inputs.join(" | "),
            self.specs
        )
    }

    /// Per-input probe counts of the last processed batch.
    pub fn probes_last(&self) -> &[u64] {
        &self.probes_last
    }

    /// Per-input probe counts since build/reset.
    pub fn probes_total(&self) -> &[u64] {
        &self.probes_total
    }

    /// Process one batch (see module docs for the telescoping rule).
    pub fn process(&mut self, ctx: &mut MaintCtx<'_>) -> Result<DeltaBatch> {
        let n = self.children.len();
        let mut deltas = Vec::with_capacity(n);
        for c in &mut self.children {
            deltas.push(c.process(ctx)?);
        }
        self.probes_last = vec![0; n];
        if deltas.iter().all(|d| d.is_empty()) {
            return Ok(DeltaBatch::new());
        }
        let _span = trace::span("nary_delta");
        // Per-batch transient indexes for inputs whose persistent index
        // is disabled/over budget, plus evaluation bookkeeping so
        // "round trip avoided" is only claimed when none happened.
        let mut transient: Vec<Option<NarySideIndex>> = (0..n).map(|_| None).collect();
        let mut evaluated = vec![false; n];
        let mut out = DeltaBatch::new();

        for i in 0..n {
            if !deltas[i].is_empty() {
                for j in (0..n).filter(|&j| j != i) {
                    self.ensure_view(j, i, &deltas, &mut transient, &mut evaluated, ctx)?;
                }
                self.probe_term(i, &deltas, &transient, &evaluated, &mut out, ctx)?;
            }
            // Term i done: absorb ΔRᵢ, moving the frontier one input right.
            self.absorb(i, &deltas[i], &mut transient, ctx);
        }
        for (t, l) in self.probes_total.iter_mut().zip(&self.probes_last) {
            *t += l;
        }
        Ok(crate::delta::normalize_delta_with(out, self.columnar_min))
    }

    /// Guarantee input `j` has a probe-able index at the state term `i`
    /// reads it (old when `j > i`, new when `j < i`). A missing index
    /// costs one backend evaluation — always at the new state — followed
    /// by a negated-delta rewind when input j's own term is still ahead.
    fn ensure_view(
        &mut self,
        j: usize,
        i: usize,
        deltas: &[DeltaBatch],
        transient: &mut [Option<NarySideIndex>],
        evaluated: &mut [bool],
        ctx: &mut MaintCtx<'_>,
    ) -> Result<()> {
        if self.states[j].ready().is_some() || transient[j].is_some() {
            return Ok(());
        }
        let side = super::join::eval_side(&self.plans[j], ctx)?;
        evaluated[j] = true;
        let mut idx = NarySideIndex::build(self.specs[j].clone(), &side, ctx.pool);
        if j > i && !deltas[j].is_empty() {
            idx.apply_negated(&deltas[j], ctx.pool);
        }
        let adopt = matches!(self.states[j], InputState::Absent)
            && self.index_budget.is_some_and(|b| idx.len() <= b);
        if adopt {
            ctx.metrics.join_index_builds += 1;
            self.states[j] = InputState::Ready(idx);
        } else {
            if matches!(self.states[j], InputState::Absent) && self.index_budget.is_some() {
                self.states[j] = InputState::Disabled;
            }
            transient[j] = Some(idx);
        }
        Ok(())
    }

    /// Absorb input i's delta into its live views (persistent and/or
    /// transient), bringing them to the new state for later terms.
    fn absorb(
        &mut self,
        i: usize,
        delta: &DeltaBatch,
        transient: &mut [Option<NarySideIndex>],
        ctx: &mut MaintCtx<'_>,
    ) {
        if delta.is_empty() {
            return;
        }
        if let InputState::Ready(idx) = &mut self.states[i] {
            idx.apply(delta, ctx.pool);
            if self.index_budget.is_some_and(|b| idx.len() > b) {
                self.states[i] = InputState::Disabled;
            }
        }
        if let Some(idx) = transient[i].as_mut() {
            idx.apply(delta, ctx.pool);
        }
    }

    /// Term i: seed partials from `ΔRᵢ`, extend along the greedy order,
    /// emit fully assembled rows in input order.
    fn probe_term(
        &mut self,
        i: usize,
        deltas: &[DeltaBatch],
        transient: &[Option<NarySideIndex>],
        evaluated: &[bool],
        out: &mut DeltaBatch,
        ctx: &mut MaintCtx<'_>,
    ) -> Result<()> {
        let _span = trace::span("nary_probe");
        let n = self.children.len();
        let mut partials: Vec<Partial> = Vec::with_capacity(deltas[i].len());
        'seed: for d in &deltas[i] {
            let mut bound = vec![None; self.n_classes];
            for (class, cols) in &self.specs[i] {
                let v = d.row[cols[0]].clone();
                if v.is_null() || cols[1..].iter().any(|&c| d.row[c] != v) {
                    continue 'seed; // this row can never join
                }
                bound[*class] = Some(v);
            }
            let mut parts = vec![None; n];
            parts[i] = Some(d.row.clone());
            partials.push(Partial {
                parts,
                bound,
                annot: d.annot,
                mult: d.mult,
            });
        }
        // Intern each distinct index annotation once per term (Arc
        // pointer identity stands in for the content hash).
        let mut interned: FxHashMap<usize, AnnotId> = FxHashMap::default();
        for &j in &self.orders[i] {
            if partials.is_empty() {
                return Ok(());
            }
            let (view, persistent) = match (self.states[j].ready(), transient[j].as_ref()) {
                (Some(idx), _) => (idx, true),
                (None, Some(idx)) => (idx, false),
                (None, None) => {
                    return Err(CoreError::StateCorrupt(format!(
                        "n-ary join input {j} has no probe-able view"
                    )))
                }
            };
            self.probes_last[j] += partials.len() as u64;
            if persistent {
                ctx.metrics.join_index_probes += partials.len() as u64;
                if !evaluated[j] {
                    ctx.metrics.db_roundtrips_avoided += 1;
                }
            } else {
                ctx.metrics.rows_sent_to_db += partials.len() as u64;
            }
            let spec_j = &self.specs[j];
            let mut next = Vec::new();
            for p in &partials {
                ctx.metrics.rows_processed += 1;
                let proj: Vec<Option<Value>> = spec_j
                    .iter()
                    .map(|(class, _)| p.bound[*class].clone())
                    .collect();
                view.for_each_match(&proj, &mut |key, entries| {
                    for e in entries {
                        let ptr = Arc::as_ptr(&e.annot) as usize;
                        let ea = match interned.get(&ptr) {
                            Some(&id) => id,
                            None => {
                                let id = ctx.pool.intern_arc(Arc::clone(&e.annot));
                                interned.insert(ptr, id);
                                id
                            }
                        };
                        let mut q = p.clone();
                        q.parts[j] = Some(e.row.clone());
                        q.annot = ctx.pool.union(p.annot, ea);
                        q.mult = p.mult * e.mult;
                        for (pos, (class, _)) in spec_j.iter().enumerate() {
                            if q.bound[*class].is_none() {
                                q.bound[*class] = Some(key[pos].clone());
                            }
                        }
                        next.push(q);
                    }
                });
            }
            partials = next;
        }
        for p in partials {
            let mut parts = p.parts.into_iter().map(Option::unwrap);
            let mut row = parts.next().expect("n-ary join has ≥ 2 inputs");
            for part in parts {
                row = row.concat(&part);
            }
            out.push(DeltaEntry {
                row,
                annot: p.annot,
                mult: p.mult,
            });
        }
        Ok(())
    }

    /// The input operators (state persistence walks the tree).
    pub fn children(&self) -> &[IncNode] {
        &self.children
    }

    /// Mutable input operators.
    pub fn children_mut(&mut self) -> &mut [IncNode] {
        &mut self.children
    }

    /// Drop all per-input indexes (a recapture rebuilds them on next
    /// use, giving previously over-budget inputs a fresh chance).
    pub fn reset(&mut self) {
        for s in &mut self.states {
            *s = InputState::Absent;
        }
        self.probes_last = vec![0; self.children.len()];
        self.probes_total = vec![0; self.children.len()];
        for c in &mut self.children {
            c.reset();
        }
    }

    /// Visit every annotation handle held by the per-input indexes.
    pub fn for_each_annot(&self, f: &mut dyn FnMut(&Arc<imp_storage::BitVec>)) {
        for idx in self.states.iter().filter_map(InputState::ready) {
            idx.for_each_annot(f);
        }
    }

    /// `(entries, bytes)` across the n per-input indexes — the *only*
    /// state this operator holds (no intermediate pair indexes exist;
    /// `fig_deep` asserts exactly this).
    pub fn index_state(&self) -> (usize, usize) {
        let mut entries = 0;
        let mut bytes = 0;
        for idx in self.states.iter().filter_map(InputState::ready) {
            entries += idx.len();
            bytes += idx.heap_size();
        }
        (entries, bytes)
    }

    /// Serialize the per-input indexes in input order.
    pub fn encode_state(&self, buf: &mut bytes::BytesMut) {
        for state in &self.states {
            match state {
                InputState::Absent => imp_storage::codec::encode_u64(buf, 0),
                InputState::Ready(idx) => {
                    imp_storage::codec::encode_u64(buf, 1);
                    idx.encode_state(buf);
                }
                InputState::Disabled => imp_storage::codec::encode_u64(buf, 2),
            }
        }
    }

    /// Restore state written by [`NaryJoinOp::encode_state`].
    pub fn decode_state(
        &mut self,
        buf: &mut bytes::Bytes,
        pool: &mut imp_storage::AnnotPool,
    ) -> Result<()> {
        for (j, side) in self.states.iter_mut().enumerate() {
            *side = match imp_storage::codec::decode_u64(buf)? {
                0 => InputState::Absent,
                1 => InputState::Ready(NarySideIndex::decode_state(
                    buf,
                    pool,
                    self.specs[j].clone(),
                )?),
                2 => InputState::Disabled,
                tag => {
                    return Err(CoreError::Codec(format!(
                        "invalid n-ary input index tag {tag}"
                    )))
                }
            };
        }
        Ok(())
    }

    /// Heap footprint (per-input indexes + children).
    pub fn heap_size(&self) -> usize {
        self.index_state().1 + self.children.iter().map(IncNode::heap_size).sum::<usize>()
    }
}

/// Greedy extension order per seeding input: repeatedly pick the input
/// with the most already-bound classes (fully bound beats partially
/// bound beats unbound; ties to the lowest input index). An unbound pick
/// is a disconnected cross-product component — that extension is a full
/// index scan and is *not* O(|Δ|); connected equi-joins never hit it.
fn extension_orders(n: usize, specs: &[ClassSpec]) -> Vec<Vec<usize>> {
    (0..n)
        .map(|seed| {
            let mut bound: Vec<bool> = Vec::new();
            let mark = |bound: &mut Vec<bool>, spec: &ClassSpec| {
                for (class, _) in spec {
                    if *class >= bound.len() {
                        bound.resize(class + 1, false);
                    }
                    bound[*class] = true;
                }
            };
            mark(&mut bound, &specs[seed]);
            let mut remaining: Vec<usize> = (0..n).filter(|&j| j != seed).collect();
            let mut order = Vec::with_capacity(n - 1);
            while !remaining.is_empty() {
                let best = remaining
                    .iter()
                    .enumerate()
                    .max_by_key(|&(_, &j)| {
                        let hits = specs[j]
                            .iter()
                            .filter(|(c, _)| bound.get(*c).copied().unwrap_or(false))
                            .count();
                        (
                            hits == specs[j].len() && hits > 0,
                            hits,
                            std::cmp::Reverse(j),
                        )
                    })
                    .map(|(pos, _)| pos)
                    .expect("remaining is non-empty");
                let j = remaining.remove(best);
                mark(&mut bound, &specs[j]);
                order.push(j);
            }
            order
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extension_order_prefers_bound_inputs() {
        // Chain A(c0) — B(c0,c1) — C(c1,c2) — D(c2).
        let specs: Vec<ClassSpec> = vec![
            vec![(0, vec![1])],
            vec![(0, vec![0]), (1, vec![1])],
            vec![(1, vec![0]), (2, vec![1])],
            vec![(2, vec![0])],
        ];
        let orders = extension_orders(4, &specs);
        // Seeding at A: B first (bound via c0), then C, then D.
        assert_eq!(orders[0], vec![1, 2, 3]);
        // Seeding at D: C, then B, then A.
        assert_eq!(orders[3], vec![2, 1, 0]);
        // Seeding at B: both A and C have one bound class; A (lower
        // index, fully bound) wins, then C, then D.
        assert_eq!(orders[1], vec![0, 2, 3]);
    }

    #[test]
    fn disconnected_component_ordered_last() {
        // A(c0) — B(c0), and E with no classes at all.
        let specs: Vec<ClassSpec> = vec![vec![(0, vec![0])], vec![(0, vec![0])], vec![]];
        let orders = extension_orders(3, &specs);
        assert_eq!(orders[0], vec![1, 2]);
        assert_eq!(orders[2], vec![0, 1]);
    }
}
