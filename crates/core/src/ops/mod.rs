//! Incremental relational algebra over sketch-annotated deltas (paper §5)
//! — a composable delta circuit, not just a tree of binary operators.
//!
//! A query plan is compiled into a circuit of [`IncNode`]s. Each
//! maintenance run pushes the annotated table deltas bottom-up: every
//! operator consumes its input deltas, updates its state `S`, and emits
//! an output delta (Def. 4.5). Deltas are bags with *signed*
//! multiplicities, so retraction (deletes, high-churn insert+delete
//! windows) flows through the same code paths as insertion — every
//! operator is symmetric in the sign. The merge operator
//! [`merge::MergeOp`] sits above the root and turns result deltas into a
//! sketch delta `ΔP` (§5.1).
//!
//! # Join compilation: n-ary circuit vs. binary fallback
//!
//! Equi-join trees are canonicalized by
//! [`imp_sql::plan::flatten_join`] (left-deep, right-deep, and bushy
//! shapes all normalize to one join set) and — when the flattened form
//! has ≥ 3 inputs and [`OpConfig::nary_join`] is on — compiled into a
//! single [`NaryJoinOp`] maintaining `Δ(R₁ ⋈ … ⋈ Rₙ)` by the
//! telescoping generalization of the paper's three-term rule, probing n
//! per-input indexes with **no intermediate pair state** (see
//! [`nary`]'s module docs).
//!
//! The binary [`JoinOp`] remains in exactly these cases, and doubles as
//! the differential oracle for the n-ary path (`nary_differential`):
//!
//! * two-input joins (the three-term rule *is* the n = 2 telescoping);
//! * cross products (no equi-keys to canonicalize — an empty-key join
//!   stays one leaf input of the flattened form);
//! * `OpConfig::nary_join` disabled (the oracle configuration).

pub mod aggregate;
pub mod join;
pub mod merge;
pub mod nary;
pub mod topk;

pub use aggregate::AggOp;
pub use join::JoinOp;
pub use merge::MergeOp;
pub use nary::NaryJoinOp;
pub use topk::TopKOp;

use crate::delta::DeltaBatch;
use crate::error::CoreError;
use crate::metrics::MaintMetrics;
use crate::Result;
use imp_engine::Database;
use imp_sketch::PartitionSet;
use imp_sql::{Expr, LogicalPlan};
use imp_storage::{AnnotPool, DeltaEntry, FxHashMap, Row};
use std::sync::Arc;

/// Per-run context shared by all operators.
pub struct MaintCtx<'a> {
    /// The backend database (already at the *new* state).
    pub db: &'a Database,
    /// The partitions `Φ` of the sketch being maintained.
    pub pset: &'a Arc<PartitionSet>,
    /// Annotated deltas per base table, pre-filtered by selection
    /// push-down when enabled. Entries reference [`MaintCtx::pool`].
    pub deltas: &'a FxHashMap<String, DeltaBatch>,
    /// The annotation pool every batch of this run is interpreted
    /// against; operators combine annotations with its memoized unions.
    pub pool: &'a mut AnnotPool,
    /// Cost counters.
    pub metrics: &'a mut MaintMetrics,
    /// Set by bounded-state operators when their buffer can no longer
    /// answer (paper §7.2 / §8.4.3: "our IMP will fully maintain the
    /// sketches"). The maintainer responds with a full recapture.
    pub needs_recapture: bool,
}

/// Default MIN/MAX buffer bound: the best `l` distinct values kept per
/// group (§7.2). Deltas are typically far smaller than this, so the
/// recapture fallback stays rare while state is bounded by default.
pub const DEFAULT_MINMAX_BUFFER: usize = 64;

/// Default per-side join-index budget (annotated tuples). Sized so the
/// evaluation workloads keep their sides materialised while a genuinely
/// huge side (≳ 100 MB of entries) falls back to per-batch outsourced
/// evaluation instead of exhausting memory.
pub const DEFAULT_JOIN_INDEX_BUDGET: usize = 1 << 20;

/// Default row-count crossover at which delta kernels switch from the
/// row-at-a-time path to the columnar one (normalize, aggregate,
/// annotate). Measured on the smoke workloads; override per run via
/// [`OpConfig::columnar_min`] (harnesses expose `IMP_COLUMNAR_MIN`).
pub const DEFAULT_COLUMNAR_MIN: usize = 32;

/// Tuning knobs for operator construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpConfig {
    /// Maintain bloom filters for join deltas (§7.2).
    pub bloom: bool,
    /// Keep only the best `l` values per group in MIN/MAX state (§7.2
    /// "Optimizing Minimum, Maximum, and Top-k"); `None` = unbounded.
    /// Bounded to [`DEFAULT_MINMAX_BUFFER`] by default, with the
    /// recapture fallback restoring exactness when the buffer exhausts.
    pub minmax_buffer: Option<usize>,
    /// Keep only the best `l` entries in top-k state; `None` = unbounded.
    pub topk_buffer: Option<usize>,
    /// Materialise each join side as a delta-maintained
    /// [`crate::opt::JoinSideIndex`] holding at most this many annotated
    /// tuples, so steady-state `Q ⋈ Δ` terms are answered in memory
    /// without a backend round trip. A side over budget falls back to
    /// per-batch outsourced evaluation (like `minmax_buffer`'s recapture
    /// fallback). `None` disables the indexes entirely.
    pub join_index_budget: Option<usize>,
    /// Compile flattenable equi-join trees of ≥ 3 inputs into one
    /// [`NaryJoinOp`] (the delta-circuit path). Off = every join stays a
    /// binary [`JoinOp`] — the differential oracle configuration.
    pub nary_join: bool,
    /// Batch-size crossover for the columnar delta kernels (normalize /
    /// aggregate / annotate): batches of at least this many rows take
    /// the columnar path. Promoted from the former hardcoded
    /// `*_COLUMNAR_MIN = 32` constants so crossover tuning needs no
    /// rebuild.
    pub columnar_min: usize,
}

impl Default for OpConfig {
    fn default() -> Self {
        OpConfig {
            bloom: true,
            minmax_buffer: Some(DEFAULT_MINMAX_BUFFER),
            topk_buffer: None,
            join_index_budget: Some(DEFAULT_JOIN_INDEX_BUDGET),
            nary_join: true,
            columnar_min: DEFAULT_COLUMNAR_MIN,
        }
    }
}

/// One node of the incremental plan.
#[derive(Debug)]
pub enum IncNode {
    /// Table access: forwards the table's annotated delta (§5.2.1).
    TableAccess {
        /// Base table name.
        table: String,
    },
    /// Stateless selection σ (§5.2.3).
    Selection {
        /// Input operator.
        input: Box<IncNode>,
        /// Filter predicate.
        predicate: Expr,
    },
    /// Stateless projection Π (§5.2.2).
    Projection {
        /// Input operator.
        input: Box<IncNode>,
        /// Projection expressions.
        exprs: Vec<Expr>,
    },
    /// Join / cross product (§5.2.4), with bloom filters (§7.2). The
    /// binary fallback and differential oracle of the n-ary path.
    Join(Box<JoinOp>),
    /// Flattened n-ary equi-join (≥ 3 inputs) maintained by the
    /// telescoping delta rule with per-input indexes only.
    Nary(Box<NaryJoinOp>),
    /// Aggregation (§5.2.5/§5.2.6); also implements duplicate removal δ.
    Aggregate(Box<AggOp>),
    /// Top-k (§5.2.7).
    TopK(Box<TopKOp>),
    /// Order-preserving pass-through (Sort does not affect sketches).
    Passthrough {
        /// Input operator.
        input: Box<IncNode>,
    },
}

impl IncNode {
    /// Compile a logical plan into an incremental operator tree.
    pub fn build(plan: &LogicalPlan, config: &OpConfig) -> Result<IncNode> {
        Ok(match plan {
            LogicalPlan::Scan { table, .. } => IncNode::TableAccess {
                table: table.clone(),
            },
            LogicalPlan::Filter { input, predicate } => IncNode::Selection {
                input: Box::new(IncNode::build(input, config)?),
                predicate: predicate.clone(),
            },
            LogicalPlan::Project { input, exprs, .. } => IncNode::Projection {
                input: Box::new(IncNode::build(input, config)?),
                exprs: exprs.clone(),
            },
            LogicalPlan::Join {
                left,
                right,
                left_keys,
                right_keys,
            } => {
                if !is_stateless(left) || !is_stateless(right) {
                    return Err(CoreError::Unsupported(
                        "incremental joins require SPJ inputs; aggregation below a \
                         join is not supported (the paper's workloads join base \
                         tables / SPJ subqueries only)"
                            .into(),
                    ));
                }
                // Canonicalize the equi-join tree; deep enough trees
                // compile to the n-ary circuit (see the module docs for
                // when the binary fallback below is used instead).
                if config.nary_join {
                    if let Some(flat) = imp_sql::plan::flatten_join(plan) {
                        if flat.inputs.len() >= 3 {
                            return Ok(IncNode::Nary(Box::new(NaryJoinOp::new(&flat, config)?)));
                        }
                    }
                }
                IncNode::Join(Box::new(JoinOp::new(
                    IncNode::build(left, config)?,
                    IncNode::build(right, config)?,
                    (**left).clone(),
                    (**right).clone(),
                    left_keys.clone(),
                    right_keys.clone(),
                    config,
                )))
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
                ..
            } => IncNode::Aggregate(Box::new(AggOp::new(
                IncNode::build(input, config)?,
                group_by.clone(),
                aggs.clone(),
                config,
            ))),
            LogicalPlan::Distinct { input } => {
                // δ(R) = γ_{;all-cols}(R): grouping on the full row with no
                // aggregation functions (paper Fig. 4).
                let arity = input.schema().arity();
                IncNode::Aggregate(Box::new(AggOp::new(
                    IncNode::build(input, config)?,
                    (0..arity).map(Expr::Col).collect(),
                    vec![],
                    config,
                )))
            }
            LogicalPlan::TopK { input, keys, k } => IncNode::TopK(Box::new(TopKOp::new(
                IncNode::build(input, config)?,
                keys.clone(),
                *k,
                config.topk_buffer,
            ))),
            LogicalPlan::Sort { input, .. } => IncNode::Passthrough {
                input: Box::new(IncNode::build(input, config)?),
            },
            LogicalPlan::Except { .. } => {
                return Err(CoreError::Unsupported(
                    "set difference is not sketch-maintainable (paper §9 \
                     future work); IMP answers such queries directly"
                        .into(),
                ))
            }
        })
    }

    /// Process one maintenance batch: consume input deltas, update state,
    /// emit the output delta.
    pub fn process(&mut self, ctx: &mut MaintCtx<'_>) -> Result<DeltaBatch> {
        match self {
            IncNode::TableAccess { table } => {
                // I(R, Δ𝒟) = Δℛ — the annotated delta, unmodified (§5.2.1).
                // Cloning a batch clones no tuple or bitvector data.
                Ok(ctx.deltas.get(table.as_str()).cloned().unwrap_or_default())
            }
            IncNode::Selection { input, predicate } => {
                let rows = input.process(ctx)?;
                let mut out = DeltaBatch::new();
                for d in rows {
                    ctx.metrics.rows_processed += 1;
                    if predicate
                        .eval_predicate(&d.row)
                        .map_err(imp_engine::EngineError::from)?
                    {
                        out.push(d);
                    }
                }
                Ok(out)
            }
            IncNode::Projection { input, exprs } => {
                let rows = input.process(ctx)?;
                let mut out = DeltaBatch::with_capacity(rows.len());
                for d in rows {
                    ctx.metrics.rows_processed += 1;
                    let vals = exprs
                        .iter()
                        .map(|e| e.eval(&d.row))
                        .collect::<std::result::Result<Vec<_>, _>>()
                        .map_err(imp_engine::EngineError::from)?;
                    out.push(DeltaEntry {
                        row: Row::new(vals),
                        annot: d.annot,
                        mult: d.mult,
                    });
                }
                Ok(out)
            }
            IncNode::Join(j) => j.process(ctx),
            IncNode::Nary(n) => n.process(ctx),
            IncNode::Aggregate(a) => a.process(ctx),
            IncNode::TopK(t) => t.process(ctx),
            IncNode::Passthrough { input } => input.process(ctx),
        }
    }

    /// Drop all operator state (before a recapture).
    pub fn reset(&mut self) {
        match self {
            IncNode::TableAccess { .. } => {}
            IncNode::Selection { input, .. }
            | IncNode::Projection { input, .. }
            | IncNode::Passthrough { input } => input.reset(),
            IncNode::Join(j) => j.reset(),
            IncNode::Nary(n) => n.reset(),
            IncNode::Aggregate(a) => a.reset(),
            IncNode::TopK(t) => t.reset(),
        }
    }

    /// Entries and own-state bytes of the topmost top-k operator, if any
    /// (Fig. 13e/f reports this against the buffer bound).
    pub fn topk_state(&self) -> Option<(usize, usize)> {
        match self {
            IncNode::TableAccess { .. } => None,
            IncNode::Selection { input, .. }
            | IncNode::Projection { input, .. }
            | IncNode::Passthrough { input } => input.topk_state(),
            IncNode::Join(j) => {
                let (l, r) = (j.left_child(), j.right_child());
                l.topk_state().or_else(|| r.topk_state())
            }
            IncNode::Nary(n) => n.children().iter().find_map(IncNode::topk_state),
            IncNode::Aggregate(a) => a.input_child().topk_state(),
            IncNode::TopK(t) => Some((t.stored_entries(), t.own_heap_size())),
        }
    }

    /// Aggregate `(entries, bytes)` of every join-side index in the tree
    /// (Fig. 17 reports the index footprint next to the operator state).
    pub fn join_index_state(&self) -> (usize, usize) {
        match self {
            IncNode::TableAccess { .. } => (0, 0),
            IncNode::Selection { input, .. }
            | IncNode::Projection { input, .. }
            | IncNode::Passthrough { input } => input.join_index_state(),
            IncNode::Join(j) => {
                let (own_e, own_b) = j.index_state();
                let (le, lb) = j.left_child().join_index_state();
                let (re, rb) = j.right_child().join_index_state();
                (own_e + le + re, own_b + lb + rb)
            }
            IncNode::Nary(n) => {
                let (mut e, mut b) = n.index_state();
                for c in n.children() {
                    let (ce, cb) = c.join_index_state();
                    e += ce;
                    b += cb;
                }
                (e, b)
            }
            IncNode::Aggregate(a) => a.input_child().join_index_state(),
            IncNode::TopK(t) => t.input_child().join_index_state(),
        }
    }

    /// Visit every `Arc<BitVec>` annotation handle held anywhere in the
    /// tree's persistent state (top-k entries, join-side indexes).
    /// Aggregation and merge state hold fragment *counters*, never
    /// handles, so they contribute nothing. Used by the maintainer's
    /// shared-ownership-aware heap accounting.
    pub fn for_each_annot(&self, f: &mut dyn FnMut(&Arc<imp_storage::BitVec>)) {
        match self {
            IncNode::TableAccess { .. } => {}
            IncNode::Selection { input, .. }
            | IncNode::Projection { input, .. }
            | IncNode::Passthrough { input } => input.for_each_annot(f),
            IncNode::Join(j) => {
                j.for_each_annot(f);
                j.left_child().for_each_annot(f);
                j.right_child().for_each_annot(f);
            }
            IncNode::Nary(n) => {
                n.for_each_annot(f);
                for c in n.children() {
                    c.for_each_annot(f);
                }
            }
            IncNode::Aggregate(a) => a.input_child().for_each_annot(f),
            IncNode::TopK(t) => {
                t.for_each_annot(f);
                t.input_child().for_each_annot(f);
            }
        }
    }

    /// Approximate heap footprint of all operator state (Fig. 15/17).
    pub fn heap_size(&self) -> usize {
        match self {
            IncNode::TableAccess { .. } => 0,
            IncNode::Selection { input, .. }
            | IncNode::Projection { input, .. }
            | IncNode::Passthrough { input } => input.heap_size(),
            IncNode::Join(j) => j.heap_size(),
            IncNode::Nary(n) => n.heap_size(),
            IncNode::Aggregate(a) => a.heap_size(),
            IncNode::TopK(t) => t.heap_size(),
        }
    }

    /// Arity of the topmost n-ary join in the circuit, if any (`fig_deep`
    /// and the differential tests assert which path compiled).
    pub fn nary_arity(&self) -> Option<usize> {
        self.find_nary(&mut |n| n.arity())
    }

    /// Per-input probe counts (last batch) of the topmost n-ary join, if
    /// any — surfaced through `MaintReport::nary_input_probes`.
    pub fn nary_probe_counts(&self) -> Option<Vec<u64>> {
        self.find_nary(&mut |n| n.probes_last().to_vec())
    }

    /// Canonical shape signature of the topmost n-ary join, if any (the
    /// canonicalization proptests compare these across parse trees).
    pub fn nary_signature(&self) -> Option<String> {
        self.find_nary(&mut |n| n.signature())
    }

    fn find_nary<T>(&self, f: &mut dyn FnMut(&NaryJoinOp) -> T) -> Option<T> {
        match self {
            IncNode::TableAccess { .. } => None,
            IncNode::Selection { input, .. }
            | IncNode::Projection { input, .. }
            | IncNode::Passthrough { input } => input.find_nary(f),
            IncNode::Join(j) => j
                .left_child()
                .find_nary(f)
                .or_else(|| j.right_child().find_nary(f)),
            IncNode::Nary(n) => Some(f(n)),
            IncNode::Aggregate(a) => a.input_child().find_nary(f),
            IncNode::TopK(t) => t.input_child().find_nary(f),
        }
    }
}

/// Is this plan free of stateful operators (pure select-project-join)?
pub fn is_stateless(plan: &LogicalPlan) -> bool {
    match plan {
        LogicalPlan::Scan { .. } => true,
        LogicalPlan::Filter { input, .. } | LogicalPlan::Project { input, .. } => {
            is_stateless(input)
        }
        LogicalPlan::Join { left, right, .. } => is_stateless(left) && is_stateless(right),
        LogicalPlan::Aggregate { .. }
        | LogicalPlan::Distinct { .. }
        | LogicalPlan::TopK { .. }
        | LogicalPlan::Sort { .. }
        | LogicalPlan::Except { .. } => false,
    }
}
