//! The merge operator μ (paper §5.1).
//!
//! μ combines the partial sketches of all query result tuples into the
//! final sketch. Its state is a map `S : Φ → ℕ` counting, per range, the
//! result tuples whose sketch contains the range. A counter crossing zero
//! emits a sketch delta: `0 → n` inserts the fragment, `n → 0` removes it.

use crate::delta::DeltaBatch;
use crate::error::CoreError;
use crate::Result;
use imp_sketch::SketchDelta;
use imp_storage::AnnotPool;

/// Merge operator state: one signed counter per global fragment.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeOp {
    counts: Vec<i64>,
}

fn codec_err(e: imp_storage::StorageError) -> CoreError {
    CoreError::Codec(e.to_string())
}

impl MergeOp {
    /// Fresh state over `total_fragments` counters.
    pub fn new(total_fragments: usize) -> MergeOp {
        MergeOp {
            counts: vec![0; total_fragments],
        }
    }

    /// Process the root operator's output delta, producing `ΔP`.
    ///
    /// `S′[ρ] = S[ρ] + |Δ+𝒟_ρ| − |Δ-𝒟_ρ|`, then
    /// `ΔP = {Δ+ρ | S[ρ]=0 ∧ S′[ρ]≠0} ∪ {Δ-ρ | S[ρ]≠0 ∧ S′[ρ]=0}`.
    ///
    /// `pool` resolves the batch's pooled annotation ids.
    pub fn process(&mut self, delta: &DeltaBatch, pool: &AnnotPool) -> Result<SketchDelta> {
        let mut out = SketchDelta::default();
        // Batch the per-fragment adjustments first so a fragment touched
        // by several delta tuples produces at most one transition.
        let mut old: imp_storage::FxHashMap<usize, i64> = imp_storage::FxHashMap::default();
        for d in delta {
            for frag in pool.get(d.annot).iter_ones() {
                old.entry(frag).or_insert(self.counts[frag]);
                self.counts[frag] += d.mult;
            }
        }
        for (frag, before) in old {
            let after = self.counts[frag];
            if after < 0 {
                return Err(CoreError::StateCorrupt(format!(
                    "merge counter for fragment {frag} went negative ({after})"
                )));
            }
            match (before == 0, after == 0) {
                (true, false) => out.added.push(frag),
                (false, true) => out.removed.push(frag),
                _ => {}
            }
        }
        out.added.sort_unstable();
        out.removed.sort_unstable();
        Ok(out)
    }

    /// Current counter of a fragment.
    pub fn count(&self, fragment: usize) -> i64 {
        self.counts[fragment]
    }

    /// Reset all counters.
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
    }

    /// Fragments with positive counters (the sketch μ would report now).
    pub fn active_fragments(&self) -> Vec<usize> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, _)| i)
            .collect()
    }

    /// Serialize the counter map.
    pub fn encode_state(&self, buf: &mut bytes::BytesMut) {
        imp_storage::codec::encode_u64(buf, self.counts.len() as u64);
        for c in &self.counts {
            imp_storage::codec::encode_i64(buf, *c);
        }
    }

    /// Restore counters written by [`MergeOp::encode_state`].
    pub fn decode_state(&mut self, buf: &mut bytes::Bytes) -> Result<()> {
        let n = imp_storage::codec::decode_u64(buf).map_err(codec_err)? as usize;
        if n != self.counts.len() {
            return Err(CoreError::Codec(format!(
                "merge counter count mismatch: stored {n}, expected {}",
                self.counts.len()
            )));
        }
        for c in self.counts.iter_mut() {
            *c = imp_storage::codec::decode_i64(buf).map_err(codec_err)?;
        }
        Ok(())
    }

    /// Heap footprint.
    pub fn heap_size(&self) -> usize {
        self.counts.capacity() * std::mem::size_of::<i64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::DeltaEntry;
    use imp_storage::{row, BitVec};

    fn d(pool: &mut AnnotPool, bits: &[usize], mult: i64) -> DeltaEntry {
        DeltaEntry {
            row: row![0],
            annot: pool.intern(BitVec::from_bits(4, bits.iter().copied())),
            mult,
        }
    }

    fn batch(pool: &mut AnnotPool, items: &[(&[usize], i64)]) -> DeltaBatch {
        items.iter().map(|(bits, m)| d(pool, bits, *m)).collect()
    }

    #[test]
    fn example_5_2() {
        // S[ρ1]=1, S[ρ2]=3; delete ⟨t3,{ρ1,ρ2}⟩ → ΔP = {Δ-ρ1}.
        let mut pool = AnnotPool::new(4);
        let mut m = MergeOp::new(4);
        let b = batch(&mut pool, &[(&[1], 1), (&[2], 3)]);
        m.process(&b, &pool).unwrap();
        let del = batch(&mut pool, &[(&[1, 2], -1)]);
        let dp = m.process(&del, &pool).unwrap();
        assert_eq!(dp.removed, vec![1]);
        assert!(dp.added.is_empty());
        assert_eq!(m.count(2), 2);
    }

    #[test]
    fn fig5_merge_step() {
        // S: {f2:1, g1:1}; insert ⟨(5,7),{f1,g2}⟩ → Δ+{f1,g2}.
        // Fragment ids: f1=0, f2=1, g1=2, g2=3.
        let mut pool = AnnotPool::new(4);
        let mut m = MergeOp::new(4);
        let b = batch(&mut pool, &[(&[1, 2], 1)]);
        m.process(&b, &pool).unwrap();
        let ins = batch(&mut pool, &[(&[0, 3], 1)]);
        let dp = m.process(&ins, &pool).unwrap();
        assert_eq!(dp.added, vec![0, 3]);
        assert!(dp.removed.is_empty());
    }

    #[test]
    fn transition_counted_once_per_batch() {
        // A fragment going 0 → 1 → 0 within one batch emits nothing.
        let mut pool = AnnotPool::new(4);
        let mut m = MergeOp::new(2);
        let b = batch(&mut pool, &[(&[0], 1), (&[0], -1)]);
        let dp = m.process(&b, &pool).unwrap();
        assert!(dp.is_empty());
    }

    #[test]
    fn negative_counter_is_corruption() {
        let mut pool = AnnotPool::new(4);
        let mut m = MergeOp::new(2);
        let b = batch(&mut pool, &[(&[0], -1)]);
        assert!(m.process(&b, &pool).is_err());
    }
}
