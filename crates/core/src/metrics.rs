//! Maintenance metrics: cost and memory accounting for the experiments.

/// Counters recorded during one maintenance run (reset per run).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MaintMetrics {
    /// Delta tuples fetched from the backend's delta logs.
    pub delta_rows_fetched: u64,
    /// Delta tuples pruned by selection push-down before entering the
    /// engine (§7.2 "Filtering Deltas Based On Selections").
    pub delta_rows_pruned: u64,
    /// Delta tuples pruned by join bloom filters (§7.2).
    pub bloom_pruned: u64,
    /// Round trips to the backend (join evaluations).
    pub db_roundtrips: u64,
    /// Rows shipped to the backend for join evaluation.
    pub rows_sent_to_db: u64,
    /// Rows the backend scanned on our behalf.
    pub db_rows_scanned: u64,
    /// Tuples processed by incremental operators.
    pub rows_processed: u64,
    /// Groups touched by aggregation operators.
    pub groups_touched: u64,
}

impl MaintMetrics {
    /// Merge counters from another run.
    pub fn absorb(&mut self, other: &MaintMetrics) {
        self.delta_rows_fetched += other.delta_rows_fetched;
        self.delta_rows_pruned += other.delta_rows_pruned;
        self.bloom_pruned += other.bloom_pruned;
        self.db_roundtrips += other.db_roundtrips;
        self.rows_sent_to_db += other.rows_sent_to_db;
        self.db_rows_scanned += other.db_rows_scanned;
        self.rows_processed += other.rows_processed;
        self.groups_touched += other.groups_touched;
    }
}
