//! Maintenance metrics: cost and memory accounting for the experiments.

use imp_storage::PoolStats;

/// Counters recorded during one maintenance run (reset per run).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MaintMetrics {
    /// Delta tuples fetched from the backend's delta logs.
    pub delta_rows_fetched: u64,
    /// Delta tuples pruned by selection push-down before entering the
    /// engine (§7.2 "Filtering Deltas Based On Selections").
    pub delta_rows_pruned: u64,
    /// Delta tuples pruned by join bloom filters (§7.2).
    pub bloom_pruned: u64,
    /// Round trips to the backend (join evaluations).
    pub db_roundtrips: u64,
    /// Round trips avoided because a join-side index answered a `Q ⋈ Δ`
    /// term in memory (counted once per term per batch, only when no
    /// evaluation of that side happened in the batch).
    pub db_roundtrips_avoided: u64,
    /// Delta rows shipped to the backend for an outsourced `Q ⋈ Δ`
    /// evaluation. Bumped only when the term actually triggers a round
    /// trip — not when the side was already evaluated this batch (bloom /
    /// index build) or answered by a side index.
    pub rows_sent_to_db: u64,
    /// Delta rows answered by probing a join-side index instead of an
    /// outsourced evaluation.
    pub join_index_probes: u64,
    /// Join-side index (re)builds, each costing one backend round trip.
    pub join_index_builds: u64,
    /// Rows the backend scanned on our behalf.
    pub db_rows_scanned: u64,
    /// Tuples processed by incremental operators.
    pub rows_processed: u64,
    /// Groups touched by aggregation operators.
    pub groups_touched: u64,
    /// Pool-aware heap footprint of the run's input delta batches
    /// (shared rows / pooled annotations counted once).
    pub delta_bytes_pooled: u64,
    /// What the same batches would occupy in the flat pre-pool
    /// representation (owned row + bitvector per entry).
    pub delta_bytes_flat: u64,
    /// Annotation unions actually computed this run (each allocates one
    /// pooled bitvector at most once per distinct pair).
    pub pool_unions_computed: u64,
    /// Annotation unions answered from the memo table or a fast path.
    pub pool_union_memo_hits: u64,
    /// Distinct annotation bitvectors interned this run.
    pub pool_interned: u64,
    /// Intern requests answered by an existing pooled entry.
    pub pool_intern_hits: u64,
}

impl MaintMetrics {
    /// Merge counters from another run.
    pub fn absorb(&mut self, other: &MaintMetrics) {
        self.delta_rows_fetched += other.delta_rows_fetched;
        self.delta_rows_pruned += other.delta_rows_pruned;
        self.bloom_pruned += other.bloom_pruned;
        self.db_roundtrips += other.db_roundtrips;
        self.db_roundtrips_avoided += other.db_roundtrips_avoided;
        self.rows_sent_to_db += other.rows_sent_to_db;
        self.join_index_probes += other.join_index_probes;
        self.join_index_builds += other.join_index_builds;
        self.db_rows_scanned += other.db_rows_scanned;
        self.rows_processed += other.rows_processed;
        self.groups_touched += other.groups_touched;
        self.delta_bytes_pooled += other.delta_bytes_pooled;
        self.delta_bytes_flat += other.delta_bytes_flat;
        self.pool_unions_computed += other.pool_unions_computed;
        self.pool_union_memo_hits += other.pool_union_memo_hits;
        self.pool_interned += other.pool_interned;
        self.pool_intern_hits += other.pool_intern_hits;
    }

    /// Record the pool activity of one run as the difference between its
    /// cumulative stats before and after the run.
    pub fn record_pool_activity(&mut self, before: PoolStats, after: PoolStats) {
        self.pool_unions_computed += after.unions_computed - before.unions_computed;
        self.pool_union_memo_hits += after.union_memo_hits - before.union_memo_hits;
        self.pool_interned += after.interned - before.interned;
        self.pool_intern_hits += after.intern_hits - before.intern_hits;
    }
}
