//! Maintenance metrics: cost and memory accounting for the experiments,
//! plus the shared atomic counters of the [`crate::sched`] scheduler
//! (queue depths, coalescing, backpressure).
//!
//! The scheduler counters are [`crate::obs::registry`] handles: when the
//! scheduler is built through [`crate::middleware::Imp`], they register in
//! the `Imp`'s unified [`crate::obs::MetricsRegistry`] (names prefixed
//! `imp_sched_`, per-shard gauges labeled `shard="i"`), so the text and
//! JSON expositions show routing, stealing, and backlog alongside the
//! latency histograms. [`SchedMetrics::new`] without a registry keeps
//! them detached (tests, standalone pools) — same behavior, unexported.

use crate::obs::registry::{Counter, Gauge, MetricsRegistry};
use imp_storage::PoolStats;

/// Counters recorded during one maintenance run (reset per run).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MaintMetrics {
    /// Delta tuples fetched from the backend's delta logs.
    pub delta_rows_fetched: u64,
    /// Delta tuples pruned by selection push-down before entering the
    /// engine (§7.2 "Filtering Deltas Based On Selections").
    pub delta_rows_pruned: u64,
    /// Delta tuples pruned by join bloom filters (§7.2).
    pub bloom_pruned: u64,
    /// Round trips to the backend (join evaluations).
    pub db_roundtrips: u64,
    /// Round trips avoided because a join-side index answered a `Q ⋈ Δ`
    /// term in memory (counted once per term per batch, only when no
    /// evaluation of that side happened in the batch).
    pub db_roundtrips_avoided: u64,
    /// Delta rows shipped to the backend for an outsourced `Q ⋈ Δ`
    /// evaluation. Bumped only when the term actually triggers a round
    /// trip — not when the side was already evaluated this batch (bloom /
    /// index build) or answered by a side index.
    pub rows_sent_to_db: u64,
    /// Delta rows answered by probing a join-side index instead of an
    /// outsourced evaluation.
    pub join_index_probes: u64,
    /// Join-side index (re)builds, each costing one backend round trip.
    pub join_index_builds: u64,
    /// Rows the backend scanned on our behalf.
    pub db_rows_scanned: u64,
    /// Tuples processed by incremental operators.
    pub rows_processed: u64,
    /// Groups touched by aggregation operators.
    pub groups_touched: u64,
    /// Pool-aware heap footprint of the run's input delta batches
    /// (shared rows / pooled annotations counted once).
    pub delta_bytes_pooled: u64,
    /// What the same batches would occupy in the flat pre-pool
    /// representation (owned row + bitvector per entry).
    pub delta_bytes_flat: u64,
    /// Annotation unions actually computed this run (each allocates one
    /// pooled bitvector at most once per distinct pair).
    pub pool_unions_computed: u64,
    /// Annotation unions answered from the memo table or a fast path.
    pub pool_union_memo_hits: u64,
    /// Distinct annotation bitvectors interned this run.
    pub pool_interned: u64,
    /// Intern requests answered by an existing pooled entry.
    pub pool_intern_hits: u64,
}

impl MaintMetrics {
    /// Merge counters from another run.
    pub fn absorb(&mut self, other: &MaintMetrics) {
        self.delta_rows_fetched += other.delta_rows_fetched;
        self.delta_rows_pruned += other.delta_rows_pruned;
        self.bloom_pruned += other.bloom_pruned;
        self.db_roundtrips += other.db_roundtrips;
        self.db_roundtrips_avoided += other.db_roundtrips_avoided;
        self.rows_sent_to_db += other.rows_sent_to_db;
        self.join_index_probes += other.join_index_probes;
        self.join_index_builds += other.join_index_builds;
        self.db_rows_scanned += other.db_rows_scanned;
        self.rows_processed += other.rows_processed;
        self.groups_touched += other.groups_touched;
        self.delta_bytes_pooled += other.delta_bytes_pooled;
        self.delta_bytes_flat += other.delta_bytes_flat;
        self.pool_unions_computed += other.pool_unions_computed;
        self.pool_union_memo_hits += other.pool_union_memo_hits;
        self.pool_interned += other.pool_interned;
        self.pool_intern_hits += other.pool_intern_hits;
    }

    /// Record the pool activity of one run as the difference between its
    /// cumulative stats before and after the run.
    pub fn record_pool_activity(&mut self, before: PoolStats, after: PoolStats) {
        self.pool_unions_computed += after.unions_computed - before.unions_computed;
        self.pool_union_memo_hits += after.union_memo_hits - before.union_memo_hits;
        self.pool_interned += after.interned - before.interned;
        self.pool_intern_hits += after.intern_hits - before.intern_hits;
    }
}

/// Shared atomic counters of the sharded maintenance scheduler
/// ([`crate::sched`]): the router and every shard worker update them
/// lock-free; [`SchedMetrics::snapshot`] captures a consistent-enough
/// view for reporting (the `fig_sched` harness and tests).
#[derive(Debug)]
pub struct SchedMetrics {
    /// Table-delta batches built by the router (one per table flush).
    pub routed_batches: Counter,
    /// Delta rows shipped inside routed batches (each counted once,
    /// however many shards the batch fans out to).
    pub routed_rows: Counter,
    /// Shard-queue messages produced by fan-out (≥ `routed_batches`).
    pub fanout_messages: Counter,
    /// Pending same-table batches folded into an earlier batch by a
    /// shard's coalescing pass.
    pub coalesced_batches: Counter,
    /// Updates that found the ingest staging queue full (or async ingest
    /// disabled) and fell back to inline ingestion on the writer's
    /// thread (backpressure onto the update path).
    pub backpressure_stalls: Counter,
    /// Updates staged for asynchronous ingestion (the writer returned
    /// without collecting or fanning out).
    pub staged_updates: Counter,
    /// Claims an idle worker took from another shard's inbox.
    pub steals: Counter,
    /// Routed batches processed inside stolen claims.
    pub stolen_batches: Counter,
    /// Maintenance runs executed by shard workers (routed + on-demand).
    pub maintain_runs: Counter,
    /// Per-shard worker liveness heartbeat (gauge): bumped once per
    /// worker-loop iteration. The health watchdogs compare it across
    /// ticks — a heartbeat that stops advancing while the shard's inbox
    /// is non-empty means the worker is wedged (parked, deadlocked, or
    /// stuck in one maintain).
    heartbeat: Vec<Gauge>,
    /// Per-shard current inbox depth (gauge): routed batches queued and
    /// not yet claimed.
    queue_depth: Vec<Gauge>,
    /// Per-shard high-water queue depth.
    max_queue_depth: Vec<Gauge>,
    /// Per-shard count of claims stolen *from* this shard's inbox by
    /// other workers (victim-side view of [`Self::steals`]).
    stolen_from: Vec<Counter>,
}

impl SchedMetrics {
    /// Fresh detached counters for `shards` queues (not exported by any
    /// registry).
    pub fn new(shards: usize) -> SchedMetrics {
        SchedMetrics::registered(shards, &MetricsRegistry::new())
    }

    /// Counters for `shards` queues, registered in `registry` under
    /// `imp_sched_*` names (per-shard series labeled `shard="i"`).
    pub fn registered(shards: usize, registry: &MetricsRegistry) -> SchedMetrics {
        SchedMetrics {
            routed_batches: registry.counter("imp_sched_routed_batches"),
            routed_rows: registry.counter("imp_sched_routed_rows"),
            fanout_messages: registry.counter("imp_sched_fanout_messages"),
            coalesced_batches: registry.counter("imp_sched_coalesced_batches"),
            backpressure_stalls: registry.counter("imp_sched_backpressure_stalls"),
            staged_updates: registry.counter("imp_sched_staged_updates"),
            steals: registry.counter("imp_sched_steals"),
            stolen_batches: registry.counter("imp_sched_stolen_batches"),
            maintain_runs: registry.counter("imp_sched_maintain_runs"),
            heartbeat: (0..shards)
                .map(|i| registry.gauge_with("imp_sched_heartbeat", &[("shard", &i.to_string())]))
                .collect(),
            queue_depth: (0..shards)
                .map(|i| registry.gauge_with("imp_sched_queue_depth", &[("shard", &i.to_string())]))
                .collect(),
            max_queue_depth: (0..shards)
                .map(|i| {
                    registry.gauge_with("imp_sched_max_queue_depth", &[("shard", &i.to_string())])
                })
                .collect(),
            stolen_from: (0..shards)
                .map(|i| {
                    registry.counter_with("imp_sched_stolen_from", &[("shard", &i.to_string())])
                })
                .collect(),
        }
    }

    /// Record one worker-loop iteration of `shard`'s worker (liveness
    /// heartbeat; see [`Self::heartbeat`]).
    #[inline]
    pub fn beat(&self, shard: usize) {
        self.heartbeat[shard].inc();
    }

    /// Current heartbeat value of `shard`'s worker.
    pub fn heartbeat_of(&self, shard: usize) -> u64 {
        self.heartbeat[shard].get()
    }

    /// Record a message entering `shard`'s queue.
    pub fn enqueued(&self, shard: usize) {
        let d = self.queue_depth[shard].inc_get();
        self.max_queue_depth[shard].max_of(d);
    }

    /// Record a message leaving `shard`'s queue. Saturates at 0: a
    /// mismatched dequeue must not wrap the gauge to `u64::MAX`, which
    /// would poison [`Self::deepest_backlog`] victim selection until the
    /// pool restarts.
    pub fn dequeued(&self, shard: usize) {
        self.queue_depth[shard].dec_saturating();
    }

    /// Record a claim of `batches` routed batches stolen from `victim`'s
    /// inbox by another worker.
    pub fn stole_from(&self, victim: usize, batches: u64) {
        self.steals.inc();
        self.stolen_batches.add(batches);
        self.stolen_from[victim].inc();
    }

    /// Shard with the deepest non-empty inbox, skipping `exclude` (the
    /// thief's own shard). Ties break to the lowest shard id. The gauges
    /// are racy, which is fine: a stale pick only costs the thief one
    /// `has_work` miss before its round-robin fallback sweep.
    pub fn deepest_backlog(&self, exclude: usize) -> Option<usize> {
        let mut best: Option<(u64, usize)> = None;
        for (shard, depth) in self.queue_depth.iter().enumerate() {
            if shard == exclude {
                continue;
            }
            let d = depth.get();
            if d > 0 && best.is_none_or(|(bd, _)| d > bd) {
                best = Some((d, shard));
            }
        }
        best.map(|(_, shard)| shard)
    }

    /// Plain-value view of the counters.
    pub fn snapshot(&self) -> SchedStats {
        SchedStats {
            routed_batches: self.routed_batches.get(),
            routed_rows: self.routed_rows.get(),
            fanout_messages: self.fanout_messages.get(),
            coalesced_batches: self.coalesced_batches.get(),
            backpressure_stalls: self.backpressure_stalls.get(),
            staged_updates: self.staged_updates.get(),
            steals: self.steals.get(),
            stolen_batches: self.stolen_batches.get(),
            maintain_runs: self.maintain_runs.get(),
            per_shard: self
                .queue_depth
                .iter()
                .zip(&self.max_queue_depth)
                .map(|(d, m)| ShardQueueStats {
                    depth: d.get(),
                    max_depth: m.get(),
                })
                .collect(),
            stolen_from: self.stolen_from.iter().map(|s| s.get()).collect(),
        }
    }
}

/// Point-in-time values of [`SchedMetrics`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedStats {
    /// See [`SchedMetrics::routed_batches`].
    pub routed_batches: u64,
    /// See [`SchedMetrics::routed_rows`].
    pub routed_rows: u64,
    /// See [`SchedMetrics::fanout_messages`].
    pub fanout_messages: u64,
    /// See [`SchedMetrics::coalesced_batches`].
    pub coalesced_batches: u64,
    /// See [`SchedMetrics::backpressure_stalls`].
    pub backpressure_stalls: u64,
    /// See [`SchedMetrics::staged_updates`].
    pub staged_updates: u64,
    /// See [`SchedMetrics::steals`].
    pub steals: u64,
    /// See [`SchedMetrics::stolen_batches`].
    pub stolen_batches: u64,
    /// See [`SchedMetrics::maintain_runs`].
    pub maintain_runs: u64,
    /// Per-shard queue gauges.
    pub per_shard: Vec<ShardQueueStats>,
    /// Per-shard claims stolen from that shard's inbox.
    pub stolen_from: Vec<u64>,
}

/// Queue gauges of one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardQueueStats {
    /// Messages currently queued.
    pub depth: u64,
    /// High-water depth since spawn.
    pub max_depth: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dequeued_saturates_at_zero() {
        let m = SchedMetrics::new(2);
        // A mismatched dequeue on an empty queue must not wrap to
        // u64::MAX.
        m.dequeued(0);
        assert_eq!(m.snapshot().per_shard[0].depth, 0);
        m.enqueued(0);
        m.dequeued(0);
        m.dequeued(0);
        let snap = m.snapshot();
        assert_eq!(snap.per_shard[0].depth, 0);
        assert_eq!(snap.per_shard[0].max_depth, 1);
    }

    #[test]
    fn underflowed_gauge_does_not_poison_victim_selection() {
        let m = SchedMetrics::new(3);
        // Shard 0 underflows; shard 2 has real backlog. The thief (shard
        // 1) must pick the real backlog, not a wrapped-around shard 0.
        m.dequeued(0);
        m.enqueued(2);
        assert_eq!(m.deepest_backlog(1), Some(2));
        // No backlog anywhere: no victim, rather than the underflowed one.
        m.dequeued(2);
        assert_eq!(m.deepest_backlog(1), None);
    }

    #[test]
    fn registered_metrics_share_registry_cells() {
        let registry = MetricsRegistry::new();
        let m = SchedMetrics::registered(2, &registry);
        m.routed_batches.add(3);
        m.enqueued(1);
        m.beat(0);
        m.beat(0);
        assert_eq!(m.heartbeat_of(0), 2);
        let text = registry.render_text();
        assert!(text.contains("imp_sched_routed_batches 3"));
        assert!(text.contains("imp_sched_heartbeat{shard=\"0\"} 2"));
        assert!(text.contains("imp_sched_queue_depth{shard=\"1\"} 1"));
        assert!(text.contains("imp_sched_max_queue_depth{shard=\"1\"} 1"));
    }
}
