//! # imp-core
//!
//! **IMP — In-memory Incremental Maintenance of Provenance Sketches**: the
//! paper's primary contribution. An in-memory incremental engine over
//! sketch-annotated deltas, plus the middleware that manages a store of
//! sketches between the user and the backend database (paper Fig. 2).
//!
//! * [`delta`] — annotated deltas with signed multiplicities (§4.2/§4.3),
//!   represented as interned, arena-backed [`delta::DeltaBatch`]es whose
//!   annotations are hash-consed [`delta::AnnotId`]s with memoized unions
//!   (see the module docs for the design and its invariants).
//! * [`fragcount`] — the per-group / per-operator fragment counters `ℱ_g`
//!   and the merge-operator counter map `S : Φ → ℕ` (§5.1, §5.2.5).
//! * [`ops`] — the composable delta circuit: incremental versions of every
//!   relational operator the paper covers — table access, selection,
//!   projection, cross product / join, aggregation (SUM / COUNT / AVG /
//!   MIN / MAX), duplicate removal, and top-k (§5.2) — plus the merge
//!   operator `μ` (§5.1). Flattenable equi-join trees of three or more
//!   inputs compile to a single [`ops::NaryJoinOp`] maintaining
//!   `Δ(R₁ ⋈ … ⋈ Rₙ)` against n per-input indexes with no intermediate
//!   pair state; the binary tree remains as the differential oracle.
//! * [`opt`] — the optimizations of §7.2: bloom filters for join deltas,
//!   selection push-down into delta retrieval, and bounded (top-l) state
//!   for MIN / MAX / top-k with recapture fallback — plus the
//!   delta-maintained [`opt::JoinSideIndex`]es that answer steady-state
//!   `Q ⋈ Δ` join terms without backend round trips.
//! * [`maintain`] — [`maintain::SketchMaintainer`], the incremental
//!   maintenance procedure `I(Q, Φ, S, Δ𝒟) = (ΔP, S′)` of Def. 4.5.
//! * [`advisor`] — workload-driven, cost-based sketch selection: a
//!   [`advisor::WorkloadTracker`] records per-sketch uses / estimated rows
//!   skipped / maintenance cost, a cost model scores each stored sketch
//!   (`benefit − α·maintain − β·heap`), and a lifecycle autopilot keeps
//!   the best set under [`middleware::ImpConfig::sketch_memory_budget`],
//!   demoting the rest (maintained → lazy → evicted → dropped) and
//!   promoting re-hot templates back.
//! * [`sched`] — the sharded multi-query maintenance scheduler: a
//!   per-table [`sched::DeltaRouter`], a [`sched::ShardPool`] of workers
//!   owning disjoint template-hash shards of the sketch store (per-table
//!   batch coalescing, bounded-queue backpressure), and versioned
//!   published [`sched::SnapshotBoard`] sketches for the USE path.
//! * [`obs`] — unified observability: a [`obs::MetricsRegistry`] of
//!   counters / gauges / log-bucketed latency histograms with Prometheus
//!   text and JSON exports, bounded per-thread span tracing over the full
//!   maintenance pipeline (Chrome trace-event export), and a typed
//!   [`obs::Probe`] event bus — gated by [`middleware::ImpConfig::obs`]
//!   so the disabled hot path costs a branch and allocates nothing.
//! * [`strategy`] / [`middleware`] — eager / lazy / batched maintenance and
//!   the user-facing [`middleware::Imp`] system (in-line or sharded store,
//!   selected by [`middleware::ImpConfig::sched_workers`]).

pub mod advisor;
pub mod delta;
pub mod error;
pub mod fragcount;
pub mod maintain;
pub mod metrics;
pub mod middleware;
pub mod obs;
pub mod obsd;
pub mod ops;
pub mod opt;
pub mod sched;
pub mod state_codec;
pub mod strategy;

pub use advisor::{Advisor, AdvisorParams, AdvisorReport, Lifecycle, WorkloadTracker};
pub use delta::{
    delta_heap_size, delta_heap_size_flat, delta_magnitude, normalize_delta, normalize_delta_with,
    semi_naive, AnnotId, AnnotPool, DeltaBatch, DeltaEntry,
};
pub use error::CoreError;
pub use fragcount::FragCounts;
pub use maintain::{MaintReport, SketchMaintainer};
pub use metrics::{MaintMetrics, SchedMetrics, SchedStats};
pub use middleware::{Imp, ImpConfig, ImpResponse, QueryMode, SketchStateView};
pub use obs::{
    FlightEvent, FlightRecord, FlightRecorder, HealthConfig, HealthReport, HealthState,
    HistSnapshot, KernelHub, KernelPath, LatencyHistogram, MetricSample, MetricsRegistry, Obs,
    ObsConfig, ObsEvent, Probe, SampleValue, Verdict,
};
pub use obsd::ObsdHandle;
pub use sched::Scheduler;
pub use strategy::MaintenanceStrategy;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
