//! The IMP middleware (paper Fig. 2).
//!
//! "IMP operates as a middleware between the user and a DBMS. … For each
//! incoming query, IMP determines whether to (i) capture a new sketch,
//! (ii) use an existing non-stale sketch, or (iii) incrementally maintain
//! a stale sketch and then utilize the updated sketch to answer the
//! query." Updates route to the backend and, under the eager strategy,
//! trigger incremental maintenance of the affected sketches.
//!
//! The sketch store has two backends, selected by
//! [`ImpConfig::sched_workers`]:
//!
//! * **In-line** (`sched_workers == 0`, the default): sketches live in a
//!   map owned by [`Imp`] and are maintained on the calling thread,
//!   exactly as the paper describes.
//! * **Sharded** (`sched_workers ≥ 1`): sketch ownership moves into the
//!   [`crate::sched`] scheduler — a pool of shard workers fed by a
//!   per-table delta router. Updates return as soon as the delta is
//!   routed; queries read versioned published sketch snapshots and only
//!   synchronize with a shard when they need a stale sketch maintained.

use crate::advisor::{
    Advisor, AdvisorParams, AdvisorReport, Lifecycle, SketchCard, SketchKey, UseKind,
    MAX_ENFORCEMENT_ROUNDS,
};
use crate::error::CoreError;
use crate::maintain::{MaintReport, SketchMaintainer};
use crate::obs::{HealthConfig, Obs, ObsConfig, Probe};
use crate::obsd::{start_obsd, ObsdHandle, ObsdState, OBSD_ADDR_ENV};
use crate::ops::OpConfig;
use crate::sched::Scheduler;
use crate::strategy::MaintenanceStrategy;
use crate::Result;
use imp_engine::{Bag, Database, QueryResult};
use imp_engine::{EngineError, ExecStats};
use imp_sketch::{apply_sketch_filter, safety, PartitionSet, RangePartition, SketchSet};
use imp_sql::ast::BinOp;
use imp_sql::{Expr, LogicalPlan, QueryTemplate, Resolver, SelectStmt, Statement};
use imp_storage::{BitVec, FxHashMap};
use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Middleware configuration.
#[derive(Debug, Clone)]
pub struct ImpConfig {
    /// Eager or lazy maintenance (§2, §8.5).
    pub strategy: MaintenanceStrategy,
    /// Fragments per range partition (`#frag`, §8.3.5).
    pub fragments: usize,
    /// Maintain bloom filters for joins (§7.2).
    pub bloom: bool,
    /// Push selections into delta retrieval (§7.2).
    pub selection_pushdown: bool,
    /// Bounded MIN/MAX state: keep the best `l` values (§7.2). Bounded to
    /// [`crate::ops::DEFAULT_MINMAX_BUFFER`] by default; the recapture
    /// fallback keeps results exact when a buffer exhausts.
    pub minmax_buffer: Option<usize>,
    /// Bounded top-k state: keep the best `l` entries (§7.2/§8.4.3).
    pub topk_buffer: Option<usize>,
    /// Per-side join-index budget (annotated tuples): materialise join
    /// sides as delta-maintained indexes so steady-state `Q ⋈ Δ` terms
    /// skip the backend round trip; a side over budget falls back to
    /// per-batch evaluation. `None` disables the indexes. Bounded to
    /// [`crate::ops::DEFAULT_JOIN_INDEX_BUDGET`] by default.
    pub join_index_budget: Option<usize>,
    /// Compile flattenable equi-join trees of three or more inputs into
    /// the n-ary delta circuit ([`crate::ops::NaryJoinOp`], `true` by
    /// default). `false` keeps every join on the binary-tree path — the
    /// oracle configuration the `nary_differential` suite compares
    /// against.
    pub nary_join: bool,
    /// Batch size at which delta normalization, annotation, and
    /// aggregation switch from row-at-a-time to their columnar kernels.
    /// Defaults to [`crate::ops::DEFAULT_COLUMNAR_MIN`].
    pub columnar_min: usize,
    /// Explicit partition-attribute choices (table → attribute), taking
    /// precedence over the safety heuristic (§7.4).
    pub partition_overrides: Vec<(String, String)>,
    /// Permit partitions on attributes the safety analysis cannot prove
    /// safe (paper §4.4 assumes safety; Fig. 5 uses such an attribute).
    pub allow_unsafe_attributes: bool,
    /// Retain immutable past sketch versions (§2).
    pub retain_sketch_versions: bool,
    /// Shard workers of the maintenance scheduler ([`crate::sched`]).
    /// `0` (default) keeps the in-line store: sketches are maintained on
    /// the calling thread according to `strategy`. With `≥ 1`, sketch
    /// ownership moves into a [`crate::sched::ShardPool`]: every update
    /// is ingested once per table and fanned out to the shards whose
    /// sketches reference it, and maintenance runs asynchronously with
    /// per-table coalescing (the scheduler supersedes the foreground
    /// behavior of `strategy`; the `maintenance` reports of
    /// [`ImpResponse::Affected`] are then always empty).
    pub sched_workers: usize,
    /// Scheduler coalescing bound: pending routed delta rows *per table*
    /// a shard folds into a single maintenance run before flushing.
    pub coalesce_budget: usize,
    /// Work stealing between shard workers (`true` by default): an idle
    /// worker claims whole coalesced batches from a loaded shard's inbox,
    /// serialized by the victim's state lock so sketch bits stay
    /// byte-identical to the owner draining alone (the
    /// `steal_differential` suite proves it). Set `false` to pin every
    /// shard's maintenance to its own worker thread.
    pub work_stealing: bool,
    /// Capacity of the async-ingest staging queue: committed updates
    /// stage their table name here and return immediately, leaving log
    /// collection and fan-out to the shard workers. `0` disables async
    /// ingest (updates collect and fan out inline, as in the in-line
    /// store); a full queue also falls back inline, counted in
    /// [`crate::metrics::SchedStats::backpressure_stalls`].
    pub ingest_queue_cap: usize,
    /// Heap-byte budget for the sketch store, enforced by the
    /// [`crate::advisor`] autopilot: every [`Imp::tick_maintenance`] (and
    /// explicit [`Imp::advise`]) runs a selection pass that keeps the
    /// highest-scoring sketches fully maintained and demotes the rest
    /// along the lifecycle ladder until `store_heap_size() ≤ budget`.
    /// `None` (default) disables the autopilot; the workload tracker
    /// still records usage either way.
    pub sketch_memory_budget: Option<usize>,
    /// Cost-model weights of the advisor (`benefit − α·maintain − β·heap`).
    pub advisor: AdvisorParams,
    /// Observability: unified metrics registry, latency histograms, and
    /// pipeline tracing (see [`crate::obs`]). Off by default — the
    /// disabled hot path costs a branch and allocates nothing.
    pub obs: ObsConfig,
    /// Address of the obsd telemetry endpoint (see [`crate::obsd`]),
    /// e.g. `"127.0.0.1:9464"`; `"127.0.0.1:0"` binds an ephemeral port
    /// reported by [`Imp::obsd_addr`]. `None` (default) falls back to the
    /// `IMP_OBSD_ADDR` environment variable; unset means no endpoint.
    /// Starting obsd also starts the [`crate::obs::health`] watchdog
    /// ticker configured by `health`.
    pub obsd_addr: Option<String>,
    /// Health watchdog thresholds and cadence (active only while the
    /// obsd endpoint runs; see [`crate::obs::health`]).
    pub health: HealthConfig,
}

/// Default [`ImpConfig::coalesce_budget`].
pub const DEFAULT_COALESCE_BUDGET: usize = 4096;

/// Default [`ImpConfig::ingest_queue_cap`].
pub const DEFAULT_INGEST_QUEUE_CAP: usize = 256;

impl Default for ImpConfig {
    fn default() -> Self {
        ImpConfig {
            strategy: MaintenanceStrategy::Lazy,
            fragments: 100,
            bloom: true,
            selection_pushdown: true,
            minmax_buffer: Some(crate::ops::DEFAULT_MINMAX_BUFFER),
            topk_buffer: None,
            join_index_budget: Some(crate::ops::DEFAULT_JOIN_INDEX_BUDGET),
            nary_join: true,
            columnar_min: crate::ops::DEFAULT_COLUMNAR_MIN,
            partition_overrides: Vec::new(),
            allow_unsafe_attributes: false,
            retain_sketch_versions: true,
            sched_workers: 0,
            coalesce_budget: DEFAULT_COALESCE_BUDGET,
            work_stealing: true,
            ingest_queue_cap: DEFAULT_INGEST_QUEUE_CAP,
            sketch_memory_budget: None,
            advisor: AdvisorParams::default(),
            obs: ObsConfig::default(),
            obsd_addr: None,
            health: HealthConfig::default(),
        }
    }
}

impl ImpConfig {
    pub(crate) fn op_config(&self) -> OpConfig {
        OpConfig {
            bloom: self.bloom,
            minmax_buffer: self.minmax_buffer,
            topk_buffer: self.topk_buffer,
            join_index_budget: self.join_index_budget,
            nary_join: self.nary_join,
            columnar_min: self.columnar_min,
        }
    }
}

/// How a SELECT was answered.
#[derive(Debug, Clone)]
pub enum QueryMode {
    /// No safe sketch attribute: answered directly, no sketch involved.
    NoSketch,
    /// A new sketch was captured (and used) for this query.
    Captured,
    /// An existing fresh sketch was used as-is.
    UsedFresh,
    /// A stale sketch was incrementally maintained, then used. Boxed: a
    /// report is far larger than the other (data-free) variants.
    Maintained(Box<MaintReport>),
}

/// Response of [`Imp::execute`].
#[derive(Debug, Clone)]
pub enum ImpResponse {
    /// SELECT result.
    Rows {
        /// The query result.
        result: QueryResult,
        /// How the query was answered.
        mode: QueryMode,
    },
    /// Update result, with any eager maintenance that ran.
    Affected {
        /// Updated table.
        table: String,
        /// Affected row count.
        count: u64,
        /// Commit version.
        version: u64,
        /// Reports of eagerly maintained sketches.
        maintenance: Vec<MaintReport>,
    },
    /// DDL succeeded.
    Created,
    /// EXPLAIN output: the resolved logical plan as text.
    Explained(String),
}

/// One stored sketch: "for each sketch we store the sketch itself, the
/// query it was captured for, the current state of incremental operators
/// for this query, and the database version it was last maintained at"
/// (§2).
#[derive(Debug)]
pub struct StoredSketch {
    /// Original SQL of the capturing query.
    pub sql: String,
    /// Resolved plan of the capturing query.
    pub plan: LogicalPlan,
    /// Sketch + operator state + version.
    pub maintainer: SketchMaintainer,
    /// Retained immutable sketch versions (version → bits).
    pub versions: BTreeMap<u64, BitVec>,
    /// Delta rows accumulated since the last maintenance (eager batching).
    pub pending_rows: u64,
    /// Evicted operator state (paper §2: "when we are running out of
    /// memory and need to evict the operator states for a query"). When
    /// set, the in-memory state has been reset and must be restored from
    /// these bytes before the next maintenance.
    pub evicted: Option<bytes::Bytes>,
    /// Rung on the advisor's lifecycle ladder (see [`crate::advisor`]).
    /// Everything below [`Lifecycle::Maintained`] is excluded from
    /// proactive maintenance and only brought current on demand.
    pub lifecycle: Lifecycle,
    /// Cached immutable publication metadata (sharded backend): the
    /// plan/SQL/tables wrapped in `Arc` once, so snapshot publication
    /// does not deep-clone them on every maintenance flush. Lazily
    /// filled by the owning shard worker; survives repartitioning (the
    /// plan does not change).
    pub(crate) published_meta: Option<PublishedMeta>,
}

/// The `Arc`-wrapped immutable parts of a published sketch (see
/// [`crate::sched::PublishedSketch`]).
#[derive(Debug, Clone)]
pub(crate) struct PublishedMeta {
    pub(crate) sql: Arc<str>,
    pub(crate) plan: Arc<LogicalPlan>,
    pub(crate) tables: Arc<[String]>,
}

/// One row of [`Imp::describe_sketches`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SketchSummary {
    /// Canonical query template.
    pub template: String,
    /// Original SQL the sketch was captured for.
    pub sql: String,
    /// Database version the sketch is valid for.
    pub version: u64,
    /// Marked fragments.
    pub fragments: usize,
    /// Fragments in the partition set.
    pub total_fragments: usize,
    /// Operator-state heap bytes.
    pub state_bytes: usize,
    /// Retained immutable versions.
    pub retained_versions: usize,
    /// Stale w.r.t. the current database?
    pub stale: bool,
    /// Rung on the advisor's lifecycle ladder.
    pub lifecycle: Lifecycle,
}

/// One row of [`Imp::sketch_states`]: the externally comparable state of
/// a stored sketch (the differential scheduler tests assert byte-identical
/// rows between the in-line and sharded backends).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SketchStateView {
    /// Canonical query template.
    pub template: String,
    /// Original SQL the sketch was captured for.
    pub sql: String,
    /// Database version the sketch is valid for.
    pub version: u64,
    /// The sketch bits.
    pub bits: BitVec,
}

/// Maximum sketches retained per query template (candidates differing in
/// constants; the template prefilter of §7.1 narrows to these).
pub(crate) const MAX_SKETCHES_PER_TEMPLATE: usize = 4;

/// The sketch store: in-line map or the sharded scheduler.
enum SketchBackend {
    /// Owned by [`Imp`], maintained on the calling thread.
    Inline(FxHashMap<QueryTemplate, Vec<StoredSketch>>),
    /// Owned by the shard workers of a [`Scheduler`].
    Sharded(Scheduler),
}

/// The IMP system.
pub struct Imp {
    db: Arc<RwLock<Database>>,
    store: SketchBackend,
    config: ImpConfig,
    advisor: Advisor,
    obs: Arc<Obs>,
    obsd: Option<ObsdHandle>,
}

impl Imp {
    /// Wrap a backend database. With [`ImpConfig::sched_workers`] ≥ 1 the
    /// sketch store is sharded across a worker pool (see [`crate::sched`]).
    pub fn new(db: Database, config: ImpConfig) -> Imp {
        let db = Arc::new(RwLock::new(db));
        let advisor = Advisor::new(config.advisor);
        let obs = Obs::new(&config.obs);
        let store = if config.sched_workers > 0 {
            SketchBackend::Sharded(Scheduler::new(
                Arc::clone(&db),
                &config,
                Arc::clone(advisor.tracker()),
                Arc::clone(&obs),
            ))
        } else {
            SketchBackend::Inline(FxHashMap::default())
        };
        // An explicit empty address means "no endpoint", so a config can
        // override an inherited IMP_OBSD_ADDR environment variable off.
        let obsd_addr = config
            .obsd_addr
            .clone()
            .or_else(|| std::env::var(OBSD_ADDR_ENV).ok())
            .filter(|addr| !addr.is_empty());
        let obsd = obsd_addr.and_then(|addr| {
            let state = ObsdState {
                obs: Arc::clone(&obs),
                health: crate::obs::HealthState::new(),
                board: match &store {
                    SketchBackend::Sharded(sched) => Some(sched.board_handle()),
                    SketchBackend::Inline(_) => None,
                },
                tracker: Arc::clone(advisor.tracker()),
                advisor: config.advisor,
            };
            match start_obsd(&addr, state, config.health.clone()) {
                Ok(handle) => Some(handle),
                Err(e) => {
                    // Telemetry must never take the system down with it:
                    // a bad address degrades to "no endpoint", loudly.
                    eprintln!("imp: obsd failed to bind {addr}: {e}");
                    None
                }
            }
        });
        Imp {
            db,
            store,
            config,
            advisor,
            obs,
            obsd,
        }
    }

    /// Address of the live obsd telemetry endpoint, when one is running
    /// (see [`ImpConfig::obsd_addr`]).
    pub fn obsd_addr(&self) -> Option<std::net::SocketAddr> {
        self.obsd.as_ref().map(ObsdHandle::addr)
    }

    /// Deterministic JSON dump of the always-on flight recorder (the
    /// programmatic twin of obsd's `/flight`).
    pub fn flight_dump(&self) -> String {
        self.obs.flight_dump()
    }

    /// The workload advisor (tracker access and cost-model parameters).
    pub fn advisor(&self) -> &Advisor {
        &self.advisor
    }

    /// The observability hub (metrics registry, tracer, probes).
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// Prometheus-style text exposition of every registered metric.
    pub fn metrics_text(&self) -> String {
        self.obs.metrics_text()
    }

    /// Deterministic JSON snapshot of every registered metric.
    pub fn metrics_json(&self) -> String {
        self.obs.metrics_json()
    }

    /// Chrome trace-event JSON of all recorded pipeline spans (load in
    /// `chrome://tracing` or Perfetto). Empty `traceEvents` unless
    /// [`ObsConfig::trace`] is on.
    pub fn trace_export(&self) -> String {
        self.obs.trace_chrome_json()
    }

    /// Subscribe a typed-event probe (works even with obs disabled).
    pub fn subscribe_probe(&self, probe: Arc<dyn Probe>) {
        self.obs.subscribe(probe);
    }

    /// Shared read access to the backend database.
    pub fn db(&self) -> RwLockReadGuard<'_, Database> {
        self.db.read()
    }

    /// Exclusive backend access (loading data bypasses the middleware).
    pub fn db_mut(&mut self) -> RwLockWriteGuard<'_, Database> {
        self.db.write()
    }

    /// The shared database handle (shard workers and harnesses hold
    /// additional readers).
    pub fn shared_db(&self) -> &Arc<RwLock<Database>> {
        &self.db
    }

    /// Active configuration.
    pub fn config(&self) -> &ImpConfig {
        &self.config
    }

    /// The maintenance scheduler, when the sharded backend is active.
    pub fn scheduler(&self) -> Option<&Scheduler> {
        match &self.store {
            SketchBackend::Inline(_) => None,
            SketchBackend::Sharded(s) => Some(s),
        }
    }

    /// Number of stored sketches.
    pub fn sketch_count(&self) -> usize {
        match &self.store {
            SketchBackend::Inline(store) => store.values().map(Vec::len).sum(),
            // Snapshots mirror the store after every count-changing
            // operation (capture, template eviction, repartition), so no
            // inspection barrier is needed.
            SketchBackend::Sharded(sched) => sched.published_count(),
        }
    }

    /// First stored sketch for a template (tests / inspection; in-line
    /// backend only — sharded sketches live on their worker threads).
    pub fn sketch_entry(&self, template: &QueryTemplate) -> Option<&StoredSketch> {
        match &self.store {
            SketchBackend::Inline(store) => store.get(template).and_then(|v| v.first()),
            SketchBackend::Sharded(_) => None,
        }
    }

    /// Total heap footprint of all sketch state.
    pub fn store_heap_size(&self) -> usize {
        match &self.store {
            SketchBackend::Inline(store) => store.values().flatten().map(stored_heap_size).sum(),
            SketchBackend::Sharded(sched) => sched.inspect().iter().map(|r| r.heap).sum(),
        }
    }

    /// Comparable state of every stored sketch, sorted. Both backends
    /// produce identical rows for identical maintenance histories (the
    /// scheduler's differential guarantee).
    pub fn sketch_states(&self) -> Vec<SketchStateView> {
        let mut out = match &self.store {
            SketchBackend::Inline(store) => store
                .iter()
                .flat_map(|(template, entries)| {
                    entries.iter().map(|e| SketchStateView {
                        template: template.text().to_string(),
                        sql: e.sql.clone(),
                        version: e.maintainer.version(),
                        bits: e.maintainer.sketch().bits().clone(),
                    })
                })
                .collect(),
            SketchBackend::Sharded(sched) => sched
                .inspect()
                .into_iter()
                .flat_map(|r| r.states)
                .collect::<Vec<_>>(),
        };
        out.sort();
        out
    }

    /// Evict the operator state of every stored sketch to its serialized
    /// form, freeing the in-memory structures (paper §2). State is
    /// restored transparently before the next maintenance.
    pub fn evict_all_states(&mut self) -> Result<usize> {
        match &mut self.store {
            SketchBackend::Inline(store) => {
                let mut freed = 0usize;
                for entry in store.values_mut().flatten() {
                    freed += evict_stored(entry);
                }
                Ok(freed)
            }
            SketchBackend::Sharded(sched) => Ok(sched.evict_all()),
        }
    }

    /// Evict the operator state of every sketch stored for one template
    /// (all constant-variant candidates), returning the bytes freed — the
    /// single-template counterpart of [`Self::evict_all_states`], used by
    /// the advisor autopilot and available for targeted memory pressure.
    /// On the sharded backend the request travels as an `Evict` control
    /// barrier to the owning shard only. Unknown templates free 0 bytes.
    pub fn evict_state(&mut self, template: &QueryTemplate) -> Result<usize> {
        match &mut self.store {
            SketchBackend::Inline(store) => Ok(store
                .get_mut(template)
                .map(|entries| entries.iter_mut().map(evict_stored).sum())
                .unwrap_or(0)),
            SketchBackend::Sharded(sched) => Ok(sched.evict_template(template)),
        }
    }

    /// Flush every stored sketch's annotation-pool and row-interner
    /// caches (the between-runs [`crate::maintain::POOL_FLUSH_LEN`] flush,
    /// exposed for memory-pressure callers and the heap-accounting
    /// tests). Returns the number of sketches flushed.
    pub fn flush_pool_caches(&mut self) -> usize {
        match &mut self.store {
            SketchBackend::Inline(store) => {
                let mut flushed = 0usize;
                for entry in store.values_mut().flatten() {
                    entry.maintainer.flush_pool_caches();
                    flushed += 1;
                }
                flushed
            }
            SketchBackend::Sharded(sched) => sched.flush_pools(),
        }
    }

    /// Recapture every sketch with fresh equi-depth partitions — the §7.4
    /// response to a significant change in data distribution ("we can
    /// simply update the ranges and recapture sketches").
    pub fn repartition_all(&mut self) -> Result<usize> {
        match &mut self.store {
            SketchBackend::Inline(store) => {
                let db = self.db.read();
                repartition_store(store, &db, &self.config)
            }
            SketchBackend::Sharded(sched) => Ok(sched.repartition_all()),
        }
    }

    /// VACUUM the backend: compact table storage and drop delta-log
    /// records that every stored sketch has already consumed. The horizon
    /// is per table — the minimum maintained version across the sketches
    /// *referencing* that table — so a low-traffic sketch does not pin
    /// every other table's log (maintained versions are table-local, see
    /// [`SketchMaintainer::maintain`]). An unreferenced table's log is
    /// reclaimed entirely. Returns `(reclaimed row slots, dropped delta
    /// records)`.
    pub fn vacuum(&mut self) -> (usize, usize) {
        let table_versions: FxHashMap<String, u64> = match &self.store {
            SketchBackend::Inline(store) => {
                let mut mins = FxHashMap::default();
                for e in store.values().flatten() {
                    for table in e.maintainer.tables() {
                        let v = mins
                            .entry(table.clone())
                            .or_insert_with(|| e.maintainer.version());
                        *v = (*v).min(e.maintainer.version());
                    }
                }
                mins
            }
            SketchBackend::Sharded(sched) => {
                let mut mins = FxHashMap::default();
                for report in sched.inspect() {
                    for (table, version) in report.table_versions {
                        let v = mins.entry(table).or_insert(version);
                        *v = (*v).min(version);
                    }
                }
                mins
            }
        };
        let mut db = self.db.write();
        let everything = db.version();
        db.vacuum_by(|table| table_versions.get(table).copied().unwrap_or(everything))
    }

    /// Summaries of all stored sketches (the store view of paper Fig. 2).
    pub fn describe_sketches(&self) -> Vec<SketchSummary> {
        let mut out = match &self.store {
            SketchBackend::Inline(store) => {
                let db = self.db.read();
                store
                    .iter()
                    .flat_map(|(template, entries)| {
                        entries.iter().map(|e| summarize(template, e, &db))
                    })
                    .collect()
            }
            SketchBackend::Sharded(sched) => sched
                .inspect()
                .into_iter()
                .flat_map(|r| r.summaries)
                .collect::<Vec<_>>(),
        };
        out.sort_by(|a: &SketchSummary, b| a.template.cmp(&b.template));
        out
    }

    /// Execute one SQL statement through the middleware.
    pub fn execute(&mut self, sql: &str) -> Result<ImpResponse> {
        let stmt = imp_sql::parse_one(sql).map_err(EngineError::from)?;
        match stmt {
            Statement::Select(select) => self.handle_select(sql, &select),
            other => self.handle_update(&other),
        }
    }

    /// Maintain every stale [`Lifecycle::Maintained`] sketch (used by
    /// eager flushes and the background maintainer; advisor-demoted
    /// sketches are only maintained on demand by a query). On the sharded
    /// backend this is a synchronous sweep: queued routed deltas are
    /// processed first (queue order), then every still-stale sketch is
    /// brought current.
    pub fn maintain_all_stale(&mut self) -> Result<Vec<MaintReport>> {
        match &mut self.store {
            SketchBackend::Inline(store) => {
                let db = self.db.read();
                let mut reports = Vec::new();
                for (template, entries) in store.iter_mut() {
                    for entry in entries.iter_mut() {
                        if entry.lifecycle == Lifecycle::Maintained
                            && entry.maintainer.is_stale(&db)
                        {
                            let report =
                                maintain_entry(entry, &db, self.config.retain_sketch_versions)?;
                            let cost = report.advisor_cost();
                            self.obs.maintain_observed(
                                template.text(),
                                cost.nanos,
                                cost.delta_rows,
                                report.recaptured,
                            );
                            self.advisor.tracker().record_maintenance(
                                SketchKey::new(template.text(), entry.sql.clone()),
                                cost,
                            );
                            reports.push(report);
                        }
                    }
                }
                Ok(reports)
            }
            SketchBackend::Sharded(sched) => sched.maintain_stale(),
        }
    }

    /// One background-maintenance tick: the in-line backend maintains all
    /// stale sketches on this thread; the sharded backend enqueues a
    /// maintain-stale sweep on every shard and returns immediately (the
    /// workers do the maintenance in parallel, off this thread). With a
    /// [`ImpConfig::sketch_memory_budget`] configured, every tick also
    /// runs one advisor autopilot pass ([`Self::advise`]).
    pub fn tick_maintenance(&mut self) -> Result<usize> {
        let maintained = match &mut self.store {
            SketchBackend::Inline(_) => None,
            SketchBackend::Sharded(sched) => {
                sched.kick_maintenance();
                Some(0)
            }
        };
        let maintained = match maintained {
            Some(n) => n,
            None => self.maintain_all_stale()?.len(),
        };
        if self.config.sketch_memory_budget.is_some() {
            self.advise()?;
        }
        Ok(maintained)
    }

    /// Run one advisor autopilot pass: score every stored sketch from the
    /// workload tracker, keep the best set under
    /// [`ImpConfig::sketch_memory_budget`], demote the losers along the
    /// lifecycle ladder (escalating until the store fits the budget), and
    /// promote re-hot demoted sketches back to full maintenance. A no-op
    /// (default report) when no budget is configured. On the sharded
    /// backend the gather/apply steps run as control barriers on the
    /// shard workers.
    pub fn advise(&mut self) -> Result<AdvisorReport> {
        let Some(budget) = self.config.sketch_memory_budget else {
            return Ok(AdvisorReport::default());
        };
        let mut report = AdvisorReport {
            budget,
            ..AdvisorReport::default()
        };
        let mut applied_last = false;
        for escalation in 0..=MAX_ENFORCEMENT_ROUNDS {
            // One gather per round serves both planning and the budget
            // check — the cards' resident sum equals `store_heap_size`
            // without the full bits-and-summaries inspection barrier.
            let cards = self.gather_cards();
            let resident: usize = cards.iter().map(|c| c.resident).sum();
            if escalation == 0 {
                report.heap_before = resident;
                // Prune tracker entries orphaned by store removals, so
                // the tracker stays bounded by the live store.
                let live: imp_storage::FxHashSet<SketchKey> =
                    cards.iter().map(SketchCard::key).collect();
                self.advisor.tracker().retain_live(&live);
            }
            report.heap_after = resident;
            applied_last = false;
            if escalation > 0 && resident <= budget {
                break;
            }
            let planned = self.advisor.plan_round(&cards, budget, escalation);
            if escalation == 0 {
                // The regular round consumed the hot windows; cool them so
                // benefit/cost estimates are moving averages over passes.
                self.advisor.decay();
            }
            report.kept = planned.kept;
            if planned.actions.is_empty() {
                break;
            }
            report.rounds = escalation + 1;
            let outcome = self.apply_advice(&planned.actions)?;
            report.outcome.absorb(&outcome);
            applied_last = true;
        }
        if applied_last {
            // The final permitted round still applied actions: re-measure
            // so the report reflects the settled store.
            report.heap_after = self.gather_cards().iter().map(|c| c.resident).sum();
        }
        Ok(report)
    }

    /// The advisor's view of every stored sketch, sorted by store key so
    /// both backends (and repeated passes) plan over identical orders.
    fn gather_cards(&self) -> Vec<SketchCard> {
        let mut cards = match &self.store {
            SketchBackend::Inline(store) => store
                .iter()
                .flat_map(|(template, entries)| entries.iter().map(|e| advisor_card(template, e)))
                .collect(),
            SketchBackend::Sharded(sched) => sched.advise_gather(),
        };
        cards.sort_by(|a: &SketchCard, b| {
            (a.template.text(), &a.sql).cmp(&(b.template.text(), &b.sql))
        });
        cards
    }

    /// Apply one planned advisor round to the store.
    fn apply_advice(
        &mut self,
        actions: &[crate::advisor::AdviseAction],
    ) -> Result<crate::advisor::ApplyOutcome> {
        match &mut self.store {
            SketchBackend::Inline(store) => {
                let db = self.db.read();
                crate::advisor::autopilot::apply_to_store(
                    store,
                    &db,
                    &self.config,
                    self.advisor.tracker(),
                    actions,
                )
            }
            SketchBackend::Sharded(sched) => sched.advise_apply(actions),
        }
    }

    // ---- updates ----

    fn handle_update(&mut self, stmt: &Statement) -> Result<ImpResponse> {
        let _span = self.obs.span("update");
        let result = self.db.write().execute_statement(stmt)?;
        match result {
            imp_engine::update::StatementResult::Created => Ok(ImpResponse::Created),
            imp_engine::update::StatementResult::Explained(text) => {
                Ok(ImpResponse::Explained(text))
            }
            imp_engine::update::StatementResult::Rows(_) => unreachable!("SELECT handled above"),
            imp_engine::update::StatementResult::Affected {
                table,
                count,
                version,
            } => {
                let mut maintenance = Vec::new();
                match &mut self.store {
                    SketchBackend::Inline(store) => {
                        if let MaintenanceStrategy::Eager { batch_size } = self.config.strategy {
                            let db = self.db.read();
                            for (template, entries) in store.iter_mut() {
                                for entry in entries.iter_mut() {
                                    if entry.lifecycle == Lifecycle::Maintained
                                        && entry.maintainer.tables().contains(&table)
                                    {
                                        entry.pending_rows += count;
                                        if entry.pending_rows as usize >= batch_size {
                                            let report = maintain_entry(
                                                entry,
                                                &db,
                                                self.config.retain_sketch_versions,
                                            )?;
                                            let cost = report.advisor_cost();
                                            self.obs.maintain_observed(
                                                template.text(),
                                                cost.nanos,
                                                cost.delta_rows,
                                                report.recaptured,
                                            );
                                            self.advisor.tracker().record_maintenance(
                                                SketchKey::new(template.text(), entry.sql.clone()),
                                                cost,
                                            );
                                            maintenance.push(report);
                                        }
                                    }
                                }
                            }
                        }
                    }
                    SketchBackend::Sharded(sched) => {
                        // Ingest the table's delta once; the router fans it
                        // out to the shards whose sketches reference it and
                        // maintenance proceeds asynchronously.
                        sched.route(&table);
                    }
                }
                Ok(ImpResponse::Affected {
                    table,
                    count,
                    version,
                    maintenance,
                })
            }
        }
    }

    // ---- queries ----

    fn handle_select(&mut self, sql: &str, select: &SelectStmt) -> Result<ImpResponse> {
        let _span = self.obs.span("select");
        let start = std::time::Instant::now();
        let template = QueryTemplate::of(select);
        let plan = Resolver::new(&*self.db.read())
            .resolve_select(select)
            .map_err(EngineError::from)?;
        let key = SketchKey::new(template.text(), sql.to_string());
        let response = if matches!(self.store, SketchBackend::Sharded(_)) {
            self.select_sharded(sql, template, plan)
        } else {
            self.select_inline(sql, template, plan)
        }?;
        if let ImpResponse::Rows { mode, .. } = &response {
            let nanos = start.elapsed().as_nanos() as u64;
            let label = match mode {
                QueryMode::NoSketch => "none",
                QueryMode::Captured => "capture",
                QueryMode::UsedFresh => "fresh",
                QueryMode::Maintained(_) => "maintained",
            };
            self.obs.query_observed(label, nanos);
            if !matches!(mode, QueryMode::NoSketch) {
                // Feed the advisor's tracker with the observed end-to-end
                // latency of sketch-answered queries.
                self.advisor.tracker().record_query_latency(&key, nanos);
            }
        }
        Ok(response)
    }

    /// The in-line (i)/(ii)/(iii) decision of paper Fig. 2.
    fn select_inline(
        &mut self,
        sql: &str,
        template: QueryTemplate,
        plan: LogicalPlan,
    ) -> Result<ImpResponse> {
        let SketchBackend::Inline(store) = &mut self.store else {
            unreachable!("select_inline on sharded backend")
        };
        let db = self.db.read();

        // (ii)/(iii): an existing sketch with the same template — check the
        // reuse condition (from [37]; here: structural subsumption) against
        // every stored candidate.
        if let Some(entries) = store.get_mut(&template) {
            if let Some(entry) = entries.iter_mut().find(|e| plan_subsumes(&e.plan, &plan)) {
                let key = SketchKey::new(template.text(), entry.sql.clone());
                let mode = if entry.maintainer.is_stale(&db) {
                    let report = maintain_entry(entry, &db, self.config.retain_sketch_versions)?;
                    let cost = report.advisor_cost();
                    self.obs.maintain_observed(
                        template.text(),
                        cost.nanos,
                        cost.delta_rows,
                        report.recaptured,
                    );
                    self.advisor.tracker().record_maintenance(key.clone(), cost);
                    QueryMode::Maintained(Box::new(report))
                } else {
                    // Evicted state stays evicted: the rewrite only needs
                    // the sketch bits (restoration happens lazily before
                    // the next maintenance).
                    QueryMode::UsedFresh
                };
                let kind = match &mode {
                    QueryMode::Maintained(_) => UseKind::Maintained,
                    _ => UseKind::Fresh,
                };
                self.advisor.tracker().record_use(
                    key,
                    kind,
                    estimate_rows_skipped(&db, entry.maintainer.sketch()),
                );
                let rewritten = apply_sketch_filter(&plan, entry.maintainer.sketch())?;
                let result = db.execute_plan(&rewritten)?;
                return Ok(ImpResponse::Rows { result, mode });
            }
        }

        // (i): capture a new sketch — pick partition attributes.
        let Some(pset) = choose_partitions(&db, &self.config, &plan)? else {
            // No sketchable attribute: answer directly (NS path).
            let result = db.execute_plan(&plan)?;
            return Ok(ImpResponse::Rows {
                result,
                mode: QueryMode::NoSketch,
            });
        };
        let (stored, result) = capture_stored(&db, &self.config, sql, plan, pset)?;
        self.advisor.tracker().record_use(
            SketchKey::new(template.text(), stored.sql.clone()),
            UseKind::Captured,
            estimate_rows_skipped(&db, stored.maintainer.sketch()),
        );
        if let Some(entries) = store.get_mut(&template) {
            if entries.len() >= MAX_SKETCHES_PER_TEMPLATE {
                let old = entries.remove(0); // evict the oldest candidate
                self.advisor
                    .tracker()
                    .forget(&SketchKey::new(template.text(), old.sql));
            }
        }
        store.entry(template).or_default().push(stored);
        Ok(ImpResponse::Rows {
            result,
            mode: QueryMode::Captured,
        })
    }

    /// The sharded decision: read the owning shard's published snapshot
    /// without blocking maintenance; only a stale reuse synchronizes with
    /// the worker (which brings the sketch current and replies with the
    /// fresh bits).
    fn select_sharded(
        &mut self,
        sql: &str,
        template: QueryTemplate,
        plan: LogicalPlan,
    ) -> Result<ImpResponse> {
        let SketchBackend::Sharded(sched) = &self.store else {
            unreachable!("select_sharded on inline backend")
        };

        if let Some(published) = sched.find_published(&template, &plan) {
            let key = SketchKey::new(template.text(), published.sql.to_string());
            let stale = {
                let db = self.db.read();
                published.tables.iter().any(|t| {
                    db.delta_since(t, published.version)
                        .map(|d| !d.is_empty())
                        .unwrap_or(false)
                })
            };
            if !stale {
                // (ii): use the published snapshot as-is — no shard
                // round trip, maintenance never blocked.
                let rewritten = apply_sketch_filter(&plan, &published.sketch)?;
                let db = self.db.read();
                self.advisor.tracker().record_use(
                    key,
                    UseKind::Fresh,
                    estimate_rows_skipped(&db, &published.sketch),
                );
                let result = db.execute_plan(&rewritten)?;
                return Ok(ImpResponse::Rows {
                    result,
                    mode: QueryMode::UsedFresh,
                });
            }
            // (iii): ask the owning shard to bring the sketch current
            // (queued routed deltas are processed first — queue order).
            // A worker-side maintenance failure propagates like the
            // in-line backend's would. The worker records the maintenance
            // cost; only the use is recorded here.
            if let Some(reply) = sched.maintain_sketch(&template, &plan)? {
                let rewritten = apply_sketch_filter(&plan, &reply.sketch)?;
                let db = self.db.read();
                self.advisor.tracker().record_use(
                    key,
                    UseKind::Maintained,
                    estimate_rows_skipped(&db, &reply.sketch),
                );
                let result = db.execute_plan(&rewritten)?;
                return Ok(ImpResponse::Rows {
                    result,
                    mode: QueryMode::Maintained(reply.report),
                });
            }
            // The candidate vanished between snapshot and request
            // (concurrent template eviction): fall through to a fresh
            // capture.
        }

        // (i): capture on this thread, then hand ownership to the shard.
        let captured = {
            let db = self.db.read();
            let Some(pset) = choose_partitions(&db, &self.config, &plan)? else {
                let result = db.execute_plan(&plan)?;
                return Ok(ImpResponse::Rows {
                    result,
                    mode: QueryMode::NoSketch,
                });
            };
            capture_stored(&db, &self.config, sql, plan, pset)?
        };
        let (stored, result) = captured;
        self.advisor.tracker().record_use(
            SketchKey::new(template.text(), stored.sql.clone()),
            UseKind::Captured,
            estimate_rows_skipped(&self.db.read(), stored.maintainer.sketch()),
        );
        sched.add_sketch(template, stored);
        Ok(ImpResponse::Rows {
            result,
            mode: QueryMode::Captured,
        })
    }
}

/// Capture a sketch for `plan` and package it as a [`StoredSketch`] plus
/// the (ordered) query result the capture produced.
pub(crate) fn capture_stored(
    db: &Database,
    config: &ImpConfig,
    sql: &str,
    plan: LogicalPlan,
    pset: Arc<PartitionSet>,
) -> Result<(StoredSketch, QueryResult)> {
    let (maintainer, rows) = SketchMaintainer::capture(
        &plan,
        db,
        pset,
        config.op_config(),
        config.selection_pushdown,
    )?;
    let result = QueryResult {
        schema: plan.schema(),
        rows: order_result(&plan, rows),
        stats: ExecStats::default(),
    };
    let mut versions = BTreeMap::new();
    if config.retain_sketch_versions {
        versions.insert(maintainer.version(), maintainer.sketch().bits().clone());
    }
    Ok((
        StoredSketch {
            sql: sql.to_string(),
            plan,
            maintainer,
            versions,
            pending_rows: 0,
            evicted: None,
            lifecycle: Lifecycle::Maintained,
            published_meta: None,
        },
        result,
    ))
}

/// Estimate the backend rows a rewrite with this sketch skips, summed
/// over its partitioned tables: per-partition sketch selectivity × the
/// table's equi-depth fragment shares (see
/// [`imp_engine::estimate_skipped_rows`]). The advisor's per-use benefit
/// signal.
pub(crate) fn estimate_rows_skipped(db: &Database, sketch: &SketchSet) -> u64 {
    let pset = sketch.partitions();
    let mut skipped = 0u64;
    for i in 0..pset.len() {
        let p = pset.partition(i);
        let rows = db.table(&p.table).map(|t| t.row_count()).unwrap_or(0);
        skipped += imp_engine::estimate_skipped_rows(rows, sketch.partition_selectivity(i));
    }
    skipped
}

/// Heap footprint of one stored sketch (state + retained versions).
pub(crate) fn stored_heap_size(s: &StoredSketch) -> usize {
    s.maintainer.state_heap_size() + s.versions.values().map(BitVec::heap_size).sum::<usize>()
}

/// Record the current sketch bits under the maintained version (§2
/// immutable version retention), when enabled.
pub(crate) fn retain_version(entry: &mut StoredSketch, retain: bool) {
    if retain {
        entry.versions.insert(
            entry.maintainer.version(),
            entry.maintainer.sketch().bits().clone(),
        );
    }
}

/// Restore (if evicted) and maintain one stored sketch via the direct
/// fetching path, resetting its eager batch counter and retaining the
/// new version — the per-entry maintenance step shared by both backends
/// (in-line sweeps and shard workers), so their arithmetic cannot drift.
pub(crate) fn maintain_entry(
    entry: &mut StoredSketch,
    db: &Database,
    retain: bool,
) -> Result<MaintReport> {
    restore_if_evicted(entry)?;
    let report = entry.maintainer.maintain(db)?;
    entry.pending_rows = 0;
    retain_version(entry, retain);
    Ok(report)
}

/// Recapture every sketch of `store` with fresh equi-depth partitions
/// (§7.4) — shared by [`Imp::repartition_all`] and the shard workers.
pub(crate) fn repartition_store(
    store: &mut FxHashMap<QueryTemplate, Vec<StoredSketch>>,
    db: &Database,
    config: &ImpConfig,
) -> Result<usize> {
    let templates: Vec<QueryTemplate> = store.keys().cloned().collect();
    let mut recaptured = 0usize;
    for template in templates {
        let Some(entries) = store.remove(&template) else {
            continue;
        };
        let mut rebuilt = Vec::with_capacity(entries.len());
        for old in entries {
            let Some(pset) = choose_partitions(db, config, &old.plan)? else {
                continue;
            };
            let (maintainer, _) = SketchMaintainer::capture(
                &old.plan,
                db,
                pset,
                config.op_config(),
                config.selection_pushdown,
            )?;
            recaptured += 1;
            rebuilt.push(StoredSketch {
                maintainer,
                versions: BTreeMap::new(),
                pending_rows: 0,
                evicted: None,
                ..old
            });
        }
        if !rebuilt.is_empty() {
            store.insert(template, rebuilt);
        }
    }
    Ok(recaptured)
}

/// Evict one sketch's operator state to its serialized form, returning
/// the bytes freed (0 when already evicted).
pub(crate) fn evict_stored(entry: &mut StoredSketch) -> usize {
    if entry.evicted.is_some() {
        return 0;
    }
    let freed = entry.maintainer.state_heap_size();
    entry.evicted = Some(crate::state_codec::save_state(&entry.maintainer));
    entry.maintainer.drop_state();
    freed
}

/// Build the advisor's [`SketchCard`] for one stored sketch — shared by
/// the in-line gather and the shard workers' `AdviseGather` barrier. The
/// card's `heap` prices the sketch at its *kept-maintained* footprint:
/// resident bytes plus, when evicted, the serialized state size (the
/// restore proxy).
pub(crate) fn advisor_card(template: &QueryTemplate, e: &StoredSketch) -> SketchCard {
    let resident = stored_heap_size(e);
    SketchCard {
        template: template.clone(),
        sql: e.sql.clone(),
        lifecycle: e.lifecycle,
        resident,
        heap: resident + e.evicted.as_ref().map(|b| b.len()).unwrap_or(0),
    }
}

/// Build the [`SketchSummary`] row for one stored sketch.
pub(crate) fn summarize(
    template: &QueryTemplate,
    e: &StoredSketch,
    db: &Database,
) -> SketchSummary {
    SketchSummary {
        template: template.text().to_string(),
        sql: e.sql.clone(),
        version: e.maintainer.version(),
        fragments: e.maintainer.sketch().fragment_count(),
        total_fragments: e.maintainer.partitions().total_fragments(),
        state_bytes: stored_heap_size(e),
        retained_versions: e.versions.len(),
        stale: e.maintainer.is_stale(db),
        lifecycle: e.lifecycle,
    }
}

/// Choose partition attributes per table (§7.4 heuristic: safe
/// attributes — for aggregation queries exactly the group-by columns —
/// ranked by sampled distinct count, following the cost-based insight
/// of [30] that finer-grained attributes yield more selective sketches).
pub(crate) fn choose_partitions(
    db: &Database,
    config: &ImpConfig,
    plan: &LogicalPlan,
) -> Result<Option<Arc<PartitionSet>>> {
    let safe = safety::safe_attributes(plan);
    let mut partitions = Vec::new();
    for table in plan.tables() {
        // Explicit override first.
        let chosen: Option<String> = config
            .partition_overrides
            .iter()
            .find(|(t, _)| t.eq_ignore_ascii_case(&table))
            .map(|(_, a)| a.clone())
            .or_else(|| {
                let mut candidates: Vec<&safety::SafeAttribute> =
                    safe.iter().filter(|s| s.table == table).collect();
                if candidates.len() > 1 {
                    candidates
                        .sort_by_key(|s| std::cmp::Reverse(sampled_distinct(db, &table, s.column)));
                }
                candidates.first().map(|s| s.attribute.clone())
            });
        let Some(attribute) = chosen else {
            continue; // table stays unpartitioned (whole-domain range)
        };
        let overridden = config
            .partition_overrides
            .iter()
            .any(|(t, _)| t.eq_ignore_ascii_case(&table));
        if !overridden
            || safety::is_safe(plan, &table, &attribute)
            || config.allow_unsafe_attributes
        {
            let fragments = config.fragments;
            partitions.push(RangePartition::equi_depth(
                db, &table, &attribute, fragments,
            )?);
        } else {
            return Err(CoreError::Sketch(
                imp_sketch::SketchError::UnsafeAttribute {
                    table: table.clone(),
                    attribute,
                },
            ));
        }
    }
    if partitions.is_empty() {
        return Ok(None);
    }
    Ok(Some(Arc::new(PartitionSet::new(partitions)?)))
}

/// Sampled distinct-value count of `table.column` (first few thousand
/// rows) — the ranking signal for partition-attribute choice.
fn sampled_distinct(db: &Database, table: &str, column: usize) -> usize {
    const SAMPLE: usize = 4096;
    let Ok(t) = db.table(table) else {
        return 0;
    };
    let mut seen: imp_storage::FxHashSet<imp_storage::Value> = imp_storage::FxHashSet::default();
    let mut n = 0usize;
    t.scan(
        None,
        |row| {
            if n < SAMPLE {
                seen.insert(row[column].clone());
                n += 1;
            }
        },
        |_| {},
    );
    seen.len()
}

/// Reload evicted operator state before the maintainer is used ("fetched
/// from the database" in paper §2 terms).
pub(crate) fn restore_if_evicted(entry: &mut StoredSketch) -> Result<()> {
    if let Some(bytes) = entry.evicted.take() {
        crate::state_codec::load_state(&mut entry.maintainer, bytes)?;
    }
    Ok(())
}

/// Order a capture result the way the plan's top Sort/TopK demands (the
/// incremental pipeline is order-agnostic).
fn order_result(plan: &LogicalPlan, mut rows: Bag) -> Bag {
    match plan {
        LogicalPlan::Sort { keys, .. } | LogicalPlan::TopK { keys, .. } => {
            rows.sort_by(|a, b| {
                imp_sql::plan::compare_rows(&a.0, &b.0, keys).then_with(|| a.0.cmp(&b.0))
            });
            rows
        }
        _ => rows,
    }
}

/// Reuse check: can the sketch captured for `stored` answer `new`?
///
/// Both plans share a query template (same structure modulo literals).
/// The provenance of `new` must be contained in `stored`'s sketch; we
/// accept when all literals match except in HAVING-style filters above the
/// aggregation, where the new predicate may only be *more* selective
/// (e.g. a sketch for `HAVING sum(x) > 5000` answers `HAVING sum(x) > 6000`,
/// cf. \[37\]'s reuse test).
pub fn plan_subsumes(stored: &LogicalPlan, new: &LogicalPlan) -> bool {
    match (stored, new) {
        (
            LogicalPlan::Filter {
                input: si,
                predicate: sp,
            },
            LogicalPlan::Filter {
                input: ni,
                predicate: np,
            },
        ) => {
            let above_agg = matches!(si.as_ref(), LogicalPlan::Aggregate { .. });
            let pred_ok = if above_agg {
                predicate_subsumes(sp, np)
            } else {
                sp == np
            };
            pred_ok && plan_subsumes(si, ni)
        }
        (
            LogicalPlan::Project {
                input: si,
                exprs: se,
                ..
            },
            LogicalPlan::Project {
                input: ni,
                exprs: ne,
                ..
            },
        ) => se == ne && plan_subsumes(si, ni),
        (
            LogicalPlan::Join {
                left: sl,
                right: sr,
                left_keys: slk,
                right_keys: srk,
            },
            LogicalPlan::Join {
                left: nl,
                right: nr,
                left_keys: nlk,
                right_keys: nrk,
            },
        ) => slk == nlk && srk == nrk && plan_subsumes(sl, nl) && plan_subsumes(sr, nr),
        (
            LogicalPlan::Aggregate {
                input: si,
                group_by: sg,
                aggs: sa,
                ..
            },
            LogicalPlan::Aggregate {
                input: ni,
                group_by: ng,
                aggs: na,
                ..
            },
        ) => sg == ng && sa == na && plan_subsumes(si, ni),
        (LogicalPlan::Distinct { input: si }, LogicalPlan::Distinct { input: ni }) => {
            plan_subsumes(si, ni)
        }
        (
            LogicalPlan::Sort {
                input: si,
                keys: sk,
            },
            LogicalPlan::Sort {
                input: ni,
                keys: nk,
            },
        ) => sk == nk && plan_subsumes(si, ni),
        (
            LogicalPlan::TopK {
                input: si,
                keys: sk,
                k: skk,
            },
            LogicalPlan::TopK {
                input: ni,
                keys: nk,
                k: nkk,
            },
        ) => sk == nk && skk == nkk && plan_subsumes(si, ni),
        (a, b) => a == b,
    }
}

/// Is `new` at least as selective as `stored` for every comparison?
fn predicate_subsumes(stored: &Expr, new: &Expr) -> bool {
    match (stored, new) {
        (
            Expr::Binary {
                op: sop,
                left: sl,
                right: sr,
            },
            Expr::Binary {
                op: nop,
                left: nl,
                right: nr,
            },
        ) if sop == nop => match (sop, sl.as_ref(), nl.as_ref(), sr.as_ref(), nr.as_ref()) {
            // col ⋈ literal with matching column.
            (BinOp::Gt | BinOp::Ge, Expr::Col(sc), Expr::Col(nc), Expr::Lit(sv), Expr::Lit(nv))
                if sc == nc =>
            {
                nv >= sv
            }
            (BinOp::Lt | BinOp::Le, Expr::Col(sc), Expr::Col(nc), Expr::Lit(sv), Expr::Lit(nv))
                if sc == nc =>
            {
                nv <= sv
            }
            (BinOp::And | BinOp::Or, _, _, _, _) => {
                predicate_subsumes(sl, nl) && predicate_subsumes(sr, nr)
            }
            _ => stored == new,
        },
        (a, b) => a == b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imp_storage::{row, DataType, Field, Schema};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "t",
            Schema::new(vec![
                Field::new("g", DataType::Int),
                Field::new("v", DataType::Int),
            ]),
        )
        .unwrap();
        db.table_mut("t")
            .unwrap()
            .bulk_load((0..50).map(|i| row![i % 5, i]))
            .unwrap();
        db
    }

    fn plan(db: &Database, sql: &str) -> LogicalPlan {
        db.plan_sql(sql).unwrap()
    }

    #[test]
    fn subsumption_directions() {
        let db = db();
        let base = plan(
            &db,
            "SELECT g, sum(v) AS s FROM t GROUP BY g HAVING sum(v) > 100",
        );
        // More selective HAVING (larger >-threshold): reusable.
        let tighter = plan(
            &db,
            "SELECT g, sum(v) AS s FROM t GROUP BY g HAVING sum(v) > 200",
        );
        assert!(plan_subsumes(&base, &tighter));
        // Less selective: not reusable.
        assert!(!plan_subsumes(&tighter, &base));
        // Identical: reusable.
        assert!(plan_subsumes(&base, &base));
    }

    #[test]
    fn subsumption_requires_equal_where_constants() {
        let db = db();
        let a = plan(
            &db,
            "SELECT g, sum(v) AS s FROM t WHERE v < 40 GROUP BY g HAVING sum(v) > 10",
        );
        let b = plan(
            &db,
            "SELECT g, sum(v) AS s FROM t WHERE v < 30 GROUP BY g HAVING sum(v) > 10",
        );
        // WHERE constants differ: provenance differs in both directions.
        assert!(!plan_subsumes(&a, &b));
        assert!(!plan_subsumes(&b, &a));
    }

    #[test]
    fn subsumption_handles_less_than_direction() {
        let db = db();
        let base = plan(
            &db,
            "SELECT g, avg(v) AS a FROM t GROUP BY g HAVING avg(v) < 100",
        );
        let tighter = plan(
            &db,
            "SELECT g, avg(v) AS a FROM t GROUP BY g HAVING avg(v) < 50",
        );
        assert!(plan_subsumes(&base, &tighter));
        assert!(!plan_subsumes(&tighter, &base));
    }

    #[test]
    fn subsumption_of_conjunctive_windows() {
        let db = db();
        let base = plan(
            &db,
            "SELECT g, avg(v) AS a FROM t GROUP BY g HAVING avg(v) > 10 AND avg(v) < 100",
        );
        let inside = plan(
            &db,
            "SELECT g, avg(v) AS a FROM t GROUP BY g HAVING avg(v) > 20 AND avg(v) < 90",
        );
        let outside = plan(
            &db,
            "SELECT g, avg(v) AS a FROM t GROUP BY g HAVING avg(v) > 5 AND avg(v) < 90",
        );
        assert!(plan_subsumes(&base, &inside));
        assert!(!plan_subsumes(&base, &outside));
    }

    #[test]
    fn store_keeps_multiple_candidates_per_template() {
        let mut imp = Imp::new(
            db(),
            ImpConfig {
                fragments: 5,
                ..Default::default()
            },
        );
        // Thresholds in *decreasing* selectivity so none subsumes the next.
        for th in [400, 300, 200, 100] {
            let sql = format!("SELECT g, sum(v) AS s FROM t GROUP BY g HAVING sum(v) > {th}");
            imp.execute(&sql).unwrap();
        }
        assert_eq!(imp.sketch_count(), 4);
        // The 5th distinct capture evicts the oldest.
        imp.execute("SELECT g, sum(v) AS s FROM t GROUP BY g HAVING sum(v) > 50")
            .unwrap();
        assert_eq!(imp.sketch_count(), MAX_SKETCHES_PER_TEMPLATE);
    }

    #[test]
    fn sampled_distinct_ranks_attributes() {
        let db = db();
        // g has 5 distinct values, v has 50.
        assert!(sampled_distinct(&db, "t", 1) > sampled_distinct(&db, "t", 0));
    }
}
