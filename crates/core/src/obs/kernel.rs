//! Per-batch columnar-vs-row kernel timing and the measured crossover.
//!
//! The delta-normalization and aggregation operators each dispatch
//! between a row-wise and a columnar kernel on `OpConfig::columnar_min`
//! — a compile-time default that ROADMAP's "raw speed, round 2" flags as
//! untuned. This module closes the *observation* half of that gap: every
//! dispatched batch records its wall-clock into
//! `imp_kernel_ns{path="columnar"|"row"}` histograms (batch rows into
//! `imp_kernel_rows{path=…}` counters), and an online per-path
//! least-squares fit of `cost(rows) ≈ a + b·rows` keeps the
//! `imp_kernel_crossover_rows` gauge at the batch size where the
//! columnar line undercuts the row line. `/metrics` thus exposes the
//! *measured* crossover next to the configured one; the closed-loop
//! tuner remains future work.
//!
//! Like the tracer, attachment is thread-local: [`super::Obs::span`]
//! attaches the hub's [`KernelHub`] for the duration of a pipeline entry
//! point (whenever obs is enabled, even with tracing off), and
//! [`timed`] is a single TLS read plus closure call when unattached —
//! zero allocation either way, so the kernels can keep it
//! unconditionally.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use super::registry::{Counter, Gauge, Histogram, MetricsRegistry};

/// Per-batch kernel wall-clock histogram name (labeled `path=`).
pub const KERNEL_NS: &str = "imp_kernel_ns";
/// Rows processed per kernel path (counter, labeled `path=`).
pub const KERNEL_ROWS: &str = "imp_kernel_rows";
/// Measured columnar/row crossover gauge (rows; 0 = not yet measurable).
pub const KERNEL_CROSSOVER: &str = "imp_kernel_crossover_rows";

/// Minimum batches per path before the fit is trusted.
const MIN_FIT_SAMPLES: u64 = 8;

/// Which kernel a batch took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelPath {
    /// The vectorized kernel (above `columnar_min`).
    Columnar,
    /// The row-at-a-time kernel.
    Row,
}

/// Online least-squares accumulator for one path's `ns ≈ a + b·rows`
/// line. Relaxed atomic sums; the fit is recomputed from the sums on
/// read, so recording stays lock-free.
#[derive(Debug, Default)]
struct PathFit {
    count: AtomicU64,
    sum_n: AtomicU64,
    sum_ns: AtomicU64,
    sum_nn: AtomicU64,
    sum_n_ns: AtomicU64,
}

impl PathFit {
    #[inline]
    fn add(&self, rows: u64, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_n.fetch_add(rows, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.sum_nn
            .fetch_add(rows.saturating_mul(rows), Ordering::Relaxed);
        self.sum_n_ns
            .fetch_add(rows.saturating_mul(ns), Ordering::Relaxed);
    }

    /// Fitted `(a, b)` intercept/slope, `None` until enough spread-out
    /// samples exist.
    fn line(&self) -> Option<(f64, f64)> {
        let c = self.count.load(Ordering::Relaxed);
        if c < MIN_FIT_SAMPLES {
            return None;
        }
        let cf = c as f64;
        let sn = self.sum_n.load(Ordering::Relaxed) as f64;
        let sy = self.sum_ns.load(Ordering::Relaxed) as f64;
        let snn = self.sum_nn.load(Ordering::Relaxed) as f64;
        let sny = self.sum_n_ns.load(Ordering::Relaxed) as f64;
        let det = cf * snn - sn * sn;
        if det <= 0.0 {
            return None; // all batches the same size: slope unidentifiable
        }
        let b = (cf * sny - sn * sy) / det;
        let a = (sy - b * sn) / cf;
        Some((a, b))
    }
}

/// Shared kernel-timing sinks: one per enabled [`super::Obs`] hub.
#[derive(Debug)]
pub struct KernelHub {
    col_ns: Histogram,
    row_ns: Histogram,
    col_rows: Counter,
    row_rows: Counter,
    crossover: Gauge,
    col_fit: PathFit,
    row_fit: PathFit,
}

impl KernelHub {
    /// Register the kernel series in `registry`.
    pub fn registered(registry: &MetricsRegistry) -> Arc<KernelHub> {
        Arc::new(KernelHub {
            col_ns: registry.histogram_with(KERNEL_NS, &[("path", "columnar")]),
            row_ns: registry.histogram_with(KERNEL_NS, &[("path", "row")]),
            col_rows: registry.counter_with(KERNEL_ROWS, &[("path", "columnar")]),
            row_rows: registry.counter_with(KERNEL_ROWS, &[("path", "row")]),
            crossover: registry.gauge(KERNEL_CROSSOVER),
            col_fit: PathFit::default(),
            row_fit: PathFit::default(),
        })
    }

    /// Record one dispatched batch and refresh the crossover gauge.
    pub fn record(&self, path: KernelPath, rows: u64, ns: u64) {
        match path {
            KernelPath::Columnar => {
                self.col_ns.record(ns);
                self.col_rows.add(rows);
                self.col_fit.add(rows, ns);
            }
            KernelPath::Row => {
                self.row_ns.record(ns);
                self.row_rows.add(rows);
                self.row_fit.add(rows, ns);
            }
        }
        self.update_crossover();
    }

    /// The crossover currently exposed on `imp_kernel_crossover_rows`.
    pub fn crossover_rows(&self) -> u64 {
        self.crossover.get()
    }

    fn update_crossover(&self) {
        let (Some((ac, bc)), Some((ar, br))) = (self.col_fit.line(), self.row_fit.line()) else {
            return;
        };
        if bc >= br {
            // The columnar line never undercuts the row line: no
            // crossover; leave the gauge at its last (or zero) value.
            return;
        }
        // a_c + b_c·n = a_r + b_r·n  ⇒  n* = (a_c − a_r)/(b_r − b_c).
        let x = (ac - ar) / (br - bc);
        if x.is_finite() {
            // A non-positive intersection means the columnar kernel
            // already wins at every batch size: crossover 1.
            self.crossover.set(x.round().max(1.0) as u64);
        }
    }
}

thread_local! {
    static ACTIVE: RefCell<Option<Arc<KernelHub>>> = const { RefCell::new(None) };
}

/// Scoped thread-local attachment of one hub (see [`attach`]).
#[derive(Debug)]
pub struct KernelAttachGuard {
    prev: Option<Arc<KernelHub>>,
    active: bool,
}

impl KernelAttachGuard {
    /// A guard that never attached (obs disabled).
    pub fn inactive() -> KernelAttachGuard {
        KernelAttachGuard {
            prev: None,
            active: false,
        }
    }
}

impl Drop for KernelAttachGuard {
    fn drop(&mut self) {
        if self.active {
            ACTIVE.with(|a| *a.borrow_mut() = self.prev.take());
        }
    }
}

/// Attach `hub` to the current thread until the guard drops (restoring
/// any previously attached hub, so nested pipeline spans compose).
pub fn attach(hub: &Arc<KernelHub>) -> KernelAttachGuard {
    let prev = ACTIVE.with(|a| a.borrow_mut().replace(Arc::clone(hub)));
    KernelAttachGuard { prev, active: true }
}

/// Time `f` as one `path` kernel batch of `rows`, recording into the
/// thread's attached hub. With nothing attached (obs off, or a thread
/// outside any pipeline span) this is a TLS read plus the plain call —
/// no timing, no allocation.
#[inline]
pub fn timed<R>(path: KernelPath, rows: usize, f: impl FnOnce() -> R) -> R {
    let hub = ACTIVE.with(|a| a.borrow().clone());
    match hub {
        None => f(),
        Some(hub) => {
            let t = Instant::now();
            let r = f();
            hub.record(path, rows as u64, t.elapsed().as_nanos() as u64);
            r
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unattached_timed_is_transparent() {
        assert_eq!(timed(KernelPath::Row, 3, || 41 + 1), 42);
    }

    #[test]
    fn attached_timed_records_batches() {
        let reg = MetricsRegistry::new();
        let hub = KernelHub::registered(&reg);
        {
            let _g = attach(&hub);
            timed(KernelPath::Columnar, 100, || {});
            timed(KernelPath::Row, 5, || {});
            timed(KernelPath::Row, 7, || {});
        }
        // Detached again: this one must not record.
        timed(KernelPath::Row, 1000, || {});
        let text = reg.render_text();
        assert!(text.contains("imp_kernel_ns_count{path=\"columnar\"} 1"));
        assert!(text.contains("imp_kernel_ns_count{path=\"row\"} 2"));
        assert!(text.contains("imp_kernel_rows{path=\"columnar\"} 100"));
        assert!(text.contains("imp_kernel_rows{path=\"row\"} 12"));
        assert!(text.contains("imp_kernel_crossover_rows 0"));
    }

    #[test]
    fn nested_attach_restores_outer_hub() {
        let reg = MetricsRegistry::new();
        let outer = KernelHub::registered(&reg);
        let reg2 = MetricsRegistry::new();
        let inner = KernelHub::registered(&reg2);
        let _o = attach(&outer);
        {
            let _i = attach(&inner);
            timed(KernelPath::Row, 1, || {});
        }
        timed(KernelPath::Row, 1, || {});
        assert!(reg2
            .render_text()
            .contains("imp_kernel_ns_count{path=\"row\"} 1"));
        assert!(reg
            .render_text()
            .contains("imp_kernel_ns_count{path=\"row\"} 1"));
    }

    #[test]
    fn crossover_found_on_synthetic_lines() {
        let reg = MetricsRegistry::new();
        let hub = KernelHub::registered(&reg);
        // Row: 10ns/row from zero. Columnar: 1000ns fixed + 1ns/row.
        // True crossover: 1000/(10-1) ≈ 111 rows.
        for n in (1..=20u64).map(|i| i * 50) {
            hub.record(KernelPath::Row, n, 10 * n);
            hub.record(KernelPath::Columnar, n, 1000 + n);
        }
        let x = hub.crossover_rows();
        assert!((100..=125).contains(&x), "crossover {x} not near 111");
        assert!(reg
            .render_text()
            .contains(&format!("imp_kernel_crossover_rows {x}")));
    }

    #[test]
    fn identical_batch_sizes_leave_crossover_unset() {
        let reg = MetricsRegistry::new();
        let hub = KernelHub::registered(&reg);
        for _ in 0..20 {
            hub.record(KernelPath::Row, 64, 640);
            hub.record(KernelPath::Columnar, 64, 700);
        }
        // Slope unidentifiable from a single batch size.
        assert_eq!(hub.crossover_rows(), 0);
    }
}
