//! Always-on flight recorder: a lock-free bounded ring of structured
//! pipeline events for post-mortems.
//!
//! The metrics registry and tracer answer "how is the store doing on
//! average"; the flight recorder answers "what happened in the seconds
//! before this stall/panic". It is **always on** — unlike the rest of
//! `obs` it is not gated by [`super::ObsConfig::enabled`], because a
//! post-mortem must not require reproducing the incident under
//! `IMP_OBS=1`. That is affordable because the hot path is a ticket
//! `fetch_add` plus a handful of relaxed atomic stores into a fixed slot:
//! no locks, no allocation (asserted by `tests/flight_stress.rs`'s
//! counting allocator).
//!
//! # Protocol
//!
//! Each slot is guarded by a seqlock-style stamp. The writer for ticket
//! `t` (slot `t % cap`, `cap` a power of two):
//!
//! 1. stores the odd stamp `2t+1` (relaxed), then a `Release` fence,
//! 2. stores the payload fields (relaxed),
//! 3. stores the even stamp `2t+2` with `Release`.
//!
//! A reader loads the stamp with `Acquire` and skips the slot unless it
//! equals `2t+2`; it then reads the fields (relaxed), issues an `Acquire`
//! fence, and re-loads the stamp — the slot is accepted only when the
//! stamp is unchanged. If any field load observed a store from a later
//! (or in-flight) writer, that writer's odd stamp is ordered before its
//! field stores by the release fence, so the re-load cannot still see
//! `2t+2`: torn slots are *detected*, never emitted. Dumps are therefore
//! deterministic snapshots of fully formed events, ordered by ticket.
//!
//! String identities (table and template names) are carried as stable
//! FNV-1a hashes ([`fid`]) so recording never allocates; dumps expose the
//! hashes, which correlate with `/metrics` labels via the same hash
//! printed by `/sketches`.

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::Instant;

/// Default ring capacity (slots, power of two).
pub const DEFAULT_FLIGHT_CAP: usize = 4096;

/// Stable 64-bit FNV-1a hash of a string identity (table or template
/// text). Allocation-free; the same function everywhere, so flight dumps,
/// `/sketches`, and tests agree on ids.
#[inline]
pub fn fid(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One structured pipeline event (plain stack value; see the kind-specific
/// field meanings on each variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightEvent {
    /// An update batch entered staging (or fell back inline).
    Staged {
        /// [`fid`] of the base table.
        table: u64,
        /// 1 when queued, 0 when backpressure forced inline ingest.
        queued: u64,
    },
    /// The router collected one table's staged deltas.
    Routed {
        /// [`fid`] of the base table.
        table: u64,
        /// Delta rows routed.
        rows: u64,
        /// Distinct destination shards.
        shards: u64,
    },
    /// A worker claimed a run from its own inbox.
    Claimed {
        /// Inbox the run came from.
        shard: u64,
        /// Claiming worker.
        worker: u64,
        /// Batches in the run.
        batches: u64,
    },
    /// A thief claimed a run from another shard's inbox.
    Stolen {
        /// Inbox the run came from.
        shard: u64,
        /// Thief worker.
        worker: u64,
        /// Batches in the run.
        batches: u64,
    },
    /// One sketch maintenance run finished.
    Maintained {
        /// [`fid`] of the canonical template text.
        template: u64,
        /// Database version span covered: `from` in the high 32 bits,
        /// `to` in the low 32 (0 when unknown, e.g. inline maintains).
        versions: u64,
        /// Delta rows consumed.
        rows: u64,
        /// Wall-clock nanoseconds of the run.
        dur_ns: u64,
    },
    /// A shard published a fresh snapshot onto the board.
    Published {
        /// Publishing shard.
        shard: u64,
        /// Sketch entries in the snapshot.
        sketches: u64,
        /// Board epoch after the publish.
        epoch: u64,
    },
}

impl FlightEvent {
    /// Numeric kind tag (stable across releases; 0 means "empty slot").
    fn kind(&self) -> u64 {
        match self {
            FlightEvent::Staged { .. } => 1,
            FlightEvent::Routed { .. } => 2,
            FlightEvent::Claimed { .. } => 3,
            FlightEvent::Stolen { .. } => 4,
            FlightEvent::Maintained { .. } => 5,
            FlightEvent::Published { .. } => 6,
        }
    }

    /// Kind name used in dumps.
    pub fn kind_name(&self) -> &'static str {
        match self {
            FlightEvent::Staged { .. } => "staged",
            FlightEvent::Routed { .. } => "routed",
            FlightEvent::Claimed { .. } => "claimed",
            FlightEvent::Stolen { .. } => "stolen",
            FlightEvent::Maintained { .. } => "maintained",
            FlightEvent::Published { .. } => "published",
        }
    }

    /// Flatten into the four generic payload words.
    fn payload(&self) -> [u64; 4] {
        match *self {
            FlightEvent::Staged { table, queued } => [table, queued, 0, 0],
            FlightEvent::Routed {
                table,
                rows,
                shards,
            } => [table, rows, shards, 0],
            FlightEvent::Claimed {
                shard,
                worker,
                batches,
            }
            | FlightEvent::Stolen {
                shard,
                worker,
                batches,
            } => [shard, worker, batches, 0],
            FlightEvent::Maintained {
                template,
                versions,
                rows,
                dur_ns,
            } => [template, versions, rows, dur_ns],
            FlightEvent::Published {
                shard,
                sketches,
                epoch,
            } => [shard, sketches, epoch, 0],
        }
    }

    /// Rebuild from a kind tag and payload words (inverse of
    /// [`Self::payload`]); `None` on an unknown tag.
    fn from_slot(kind: u64, p: [u64; 4]) -> Option<FlightEvent> {
        Some(match kind {
            1 => FlightEvent::Staged {
                table: p[0],
                queued: p[1],
            },
            2 => FlightEvent::Routed {
                table: p[0],
                rows: p[1],
                shards: p[2],
            },
            3 => FlightEvent::Claimed {
                shard: p[0],
                worker: p[1],
                batches: p[2],
            },
            4 => FlightEvent::Stolen {
                shard: p[0],
                worker: p[1],
                batches: p[2],
            },
            5 => FlightEvent::Maintained {
                template: p[0],
                versions: p[1],
                rows: p[2],
                dur_ns: p[3],
            },
            6 => FlightEvent::Published {
                shard: p[0],
                sketches: p[1],
                epoch: p[2],
            },
            _ => return None,
        })
    }

    /// Named fields for the JSON dump, in emission order.
    fn fields(&self) -> [(&'static str, u64); 4] {
        let p = self.payload();
        let names: [&'static str; 4] = match self {
            FlightEvent::Staged { .. } => ["table", "queued", "", ""],
            FlightEvent::Routed { .. } => ["table", "rows", "shards", ""],
            FlightEvent::Claimed { .. } | FlightEvent::Stolen { .. } => {
                ["shard", "worker", "batches", ""]
            }
            FlightEvent::Maintained { .. } => ["template", "versions", "rows", "dur_ns"],
            FlightEvent::Published { .. } => ["shard", "sketches", "epoch", ""],
        };
        [
            (names[0], p[0]),
            (names[1], p[1]),
            (names[2], p[2]),
            (names[3], p[3]),
        ]
    }
}

/// A fully formed event read back out of the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightRecord {
    /// Global sequence number (monotonic across the recorder's lifetime).
    pub ticket: u64,
    /// Nanoseconds since the recorder's epoch (its construction instant).
    pub t_ns: u64,
    /// The event payload.
    pub event: FlightEvent,
}

/// One ring slot: seqlock stamp + timestamp + kind + 4 payload words.
#[derive(Debug, Default)]
struct Slot {
    seq: AtomicU64,
    t_ns: AtomicU64,
    kind: AtomicU64,
    p: [AtomicU64; 4],
}

/// The always-on bounded event ring (see the module docs).
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Box<[Slot]>,
    head: AtomicU64,
    epoch: Instant,
}

impl FlightRecorder {
    /// Ring with `cap` slots (rounded up to a power of two, min 64).
    pub fn new(cap: usize) -> FlightRecorder {
        let cap = cap.max(64).next_power_of_two();
        FlightRecorder {
            slots: (0..cap).map(|_| Slot::default()).collect(),
            head: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events recorded over the recorder's lifetime (including ones the
    /// ring has since overwritten).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Record one event. Lock-free, allocation-free: one `fetch_add` and
    /// a fixed number of relaxed stores. Safe to call from any thread at
    /// any time, including with readers dumping concurrently.
    #[inline]
    pub fn record(&self, event: FlightEvent) {
        let t_ns = self.epoch.elapsed().as_nanos() as u64;
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket as usize) & (self.slots.len() - 1)];
        // Odd stamp: slot under construction. The release fence orders it
        // before every payload store, so a reader that observes any of
        // our payload writes cannot still read the previous even stamp.
        slot.seq.store(2 * ticket + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        slot.t_ns.store(t_ns, Ordering::Relaxed);
        slot.kind.store(event.kind(), Ordering::Relaxed);
        let p = event.payload();
        for (dst, v) in slot.p.iter().zip(p) {
            dst.store(v, Ordering::Relaxed);
        }
        // Even stamp: slot complete, released so readers see the payload.
        slot.seq.store(2 * ticket + 2, Ordering::Release);
    }

    /// All fully formed events currently retained, newest-window-filtered:
    /// only events with `t_ns` within the last `window_ns` of the
    /// recorder's clock are returned (pass `u64::MAX` for everything
    /// retained). Sorted by ticket (emission order). Slots that are empty,
    /// mid-write, or overwritten during the read are skipped — never torn.
    pub fn events(&self, window_ns: u64) -> Vec<FlightRecord> {
        let now_ns = self.epoch.elapsed().as_nanos() as u64;
        let cutoff = now_ns.saturating_sub(window_ns);
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let start = head.saturating_sub(cap);
        let mut out = Vec::with_capacity((head - start) as usize);
        for ticket in start..head {
            let slot = &self.slots[(ticket as usize) & (self.slots.len() - 1)];
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 != 2 * ticket + 2 {
                continue; // empty, mid-write, or already recycled
            }
            let t_ns = slot.t_ns.load(Ordering::Relaxed);
            let kind = slot.kind.load(Ordering::Relaxed);
            let p = [
                slot.p[0].load(Ordering::Relaxed),
                slot.p[1].load(Ordering::Relaxed),
                slot.p[2].load(Ordering::Relaxed),
                slot.p[3].load(Ordering::Relaxed),
            ];
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != s1 {
                continue; // overwritten mid-read: reject, never tear
            }
            let Some(event) = FlightEvent::from_slot(kind, p) else {
                continue;
            };
            if t_ns < cutoff {
                continue;
            }
            out.push(FlightRecord {
                ticket,
                t_ns,
                event,
            });
        }
        out
    }

    /// Deterministic JSON dump of [`Self::events`] plus ring metadata:
    /// `{"flight":{"cap":…,"recorded":…,"window_ns":…,"events":[…]}}`,
    /// events sorted by ticket, each with `ticket`, `t_ns`, `kind`, and
    /// its kind-specific numeric fields.
    pub fn dump_json(&self, window_ns: u64) -> String {
        let events = self.events(window_ns);
        let mut out = String::with_capacity(64 + events.len() * 96);
        out.push_str("{\"flight\":{\"cap\":");
        out.push_str(&self.capacity().to_string());
        out.push_str(",\"recorded\":");
        out.push_str(&self.recorded().to_string());
        out.push_str(",\"window_ns\":");
        out.push_str(&window_ns.to_string());
        out.push_str(",\"events\":[");
        for (i, rec) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"ticket\":");
            out.push_str(&rec.ticket.to_string());
            out.push_str(",\"t_ns\":");
            out.push_str(&rec.t_ns.to_string());
            out.push_str(",\"kind\":\"");
            out.push_str(rec.event.kind_name());
            out.push('"');
            for (name, v) in rec.event.fields() {
                if name.is_empty() {
                    continue;
                }
                out.push_str(",\"");
                out.push_str(name);
                out.push_str("\":");
                out.push_str(&v.to_string());
            }
            out.push('}');
        }
        out.push_str("]}}");
        out
    }
}

/// Recorders the panic hook dumps (weak: a dropped `Imp` unregisters
/// itself by expiring).
fn panic_registry() -> &'static Mutex<Vec<Weak<FlightRecorder>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Weak<FlightRecorder>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Register a recorder with the process-wide panic hook (installed once,
/// chaining the previous hook). On panic, every live registered recorder
/// dumps its full ring to stderr — so a wedged-shard post-mortem has the
/// last seconds of pipeline history without any reproduction run.
pub fn register_panic_dump(recorder: &Arc<FlightRecorder>) {
    static INSTALL: OnceLock<()> = OnceLock::new();
    INSTALL.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            prev(info);
            let mut registry = match panic_registry().lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            registry.retain(|w| w.strong_count() > 0);
            for weak in registry.iter() {
                if let Some(rec) = weak.upgrade() {
                    eprintln!("[imp] flight dump at panic: {}", rec.dump_json(u64::MAX));
                }
            }
        }));
    });
    let mut registry = match panic_registry().lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    registry.retain(|w| w.strong_count() > 0);
    registry.push(Arc::downgrade(recorder));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_read_back_in_order() {
        let fr = FlightRecorder::new(64);
        for i in 0..10u64 {
            fr.record(FlightEvent::Routed {
                table: fid("t"),
                rows: i,
                shards: 1,
            });
        }
        let events = fr.events(u64::MAX);
        assert_eq!(events.len(), 10);
        for (i, rec) in events.iter().enumerate() {
            assert_eq!(rec.ticket, i as u64);
            assert_eq!(
                rec.event,
                FlightEvent::Routed {
                    table: fid("t"),
                    rows: i as u64,
                    shards: 1,
                }
            );
        }
    }

    #[test]
    fn ring_retains_only_last_cap_events() {
        let fr = FlightRecorder::new(64);
        let cap = fr.capacity() as u64;
        for i in 0..cap + 17 {
            fr.record(FlightEvent::Published {
                shard: 0,
                sketches: i,
                epoch: i,
            });
        }
        let events = fr.events(u64::MAX);
        assert_eq!(events.len(), fr.capacity());
        assert_eq!(events.first().unwrap().ticket, 17);
        assert_eq!(events.last().unwrap().ticket, cap + 16);
        assert_eq!(fr.recorded(), cap + 17);
    }

    #[test]
    fn window_filters_by_time() {
        let fr = FlightRecorder::new(64);
        fr.record(FlightEvent::Staged {
            table: fid("a"),
            queued: 1,
        });
        // A zero-width window drops everything already recorded …
        assert!(fr.events(0).is_empty());
        // … while the max window keeps it.
        assert_eq!(fr.events(u64::MAX).len(), 1);
    }

    #[test]
    fn dump_json_shape() {
        let fr = FlightRecorder::new(64);
        fr.record(FlightEvent::Maintained {
            template: fid("q1"),
            versions: (3 << 32) | 4,
            rows: 100,
            dur_ns: 12345,
        });
        let json = fr.dump_json(u64::MAX);
        assert!(json.starts_with("{\"flight\":{\"cap\":64,\"recorded\":1,"));
        assert!(json.contains("\"kind\":\"maintained\""));
        assert!(json.contains("\"rows\":100"));
        assert!(json.contains("\"dur_ns\":12345"));
        assert!(json.contains(&format!("\"template\":{}", fid("q1"))));
    }

    #[test]
    fn event_roundtrip_all_kinds() {
        let all = [
            FlightEvent::Staged {
                table: 7,
                queued: 0,
            },
            FlightEvent::Routed {
                table: 7,
                rows: 8,
                shards: 2,
            },
            FlightEvent::Claimed {
                shard: 1,
                worker: 1,
                batches: 3,
            },
            FlightEvent::Stolen {
                shard: 0,
                worker: 1,
                batches: 2,
            },
            FlightEvent::Maintained {
                template: 9,
                versions: 5,
                rows: 6,
                dur_ns: 7,
            },
            FlightEvent::Published {
                shard: 2,
                sketches: 4,
                epoch: 11,
            },
        ];
        let fr = FlightRecorder::new(64);
        for e in all {
            fr.record(e);
        }
        let back: Vec<FlightEvent> = fr.events(u64::MAX).iter().map(|r| r.event).collect();
        assert_eq!(back, all);
    }

    #[test]
    fn fid_is_stable_and_distinguishes() {
        assert_eq!(fid("orders"), fid("orders"));
        assert_ne!(fid("orders"), fid("lineitem"));
        // FNV-1a of the empty string.
        assert_eq!(fid(""), 0xcbf2_9ce4_8422_2325);
    }
}
