//! Structured pipeline tracing: bounded per-thread span rings, exported
//! as Chrome trace-event JSON.
//!
//! A [`Tracer`] owns one bounded ring buffer per participating thread.
//! Pipeline entry points (the middleware SELECT/UPDATE paths, the shard
//! workers' claim loop) [`Tracer::attach`] the tracer to the current
//! thread; from there any code — however deep in the operator stack —
//! opens spans with the free function [`span`], which finds the attached
//! tracer through a thread-local and needs no handle plumbing. Spans
//! carry ids, parent links (the enclosing span on the same thread), and
//! monotonic nanosecond timestamps from the tracer's epoch, so exports
//! from different threads line up on one clock.
//!
//! When the tracer is disabled (the default), `attach` is one relaxed
//! atomic load and `span` is one thread-local read — no allocation, no
//! locks. Rings are bounded: once full, the oldest span is evicted and a
//! drop counter bumped; the export sanitizes parent links that point at
//! evicted spans so "every exported parent exists" always holds
//! (property-tested in `tests/obs_props.rs`).
//!
//! [`Tracer::export_chrome_json`] renders the classic Chrome trace-event
//! array format — open `chrome://tracing` (or <https://ui.perfetto.dev>)
//! and load the file.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

/// Default per-thread ring capacity (spans kept per thread).
pub const DEFAULT_RING_CAP: usize = 4096;

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id (> 0).
    pub id: u64,
    /// Enclosing span on the same thread, 0 for roots.
    pub parent: u64,
    /// Static site name (e.g. `"maintain"`, `"nary_probe"`).
    pub name: &'static str,
    /// Tracer-assigned thread id.
    pub tid: u64,
    /// Start, nanoseconds since the tracer's epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

#[derive(Debug)]
struct Ring {
    tid: u64,
    spans: Mutex<VecDeque<SpanRecord>>,
    dropped: AtomicU64,
}

/// Span collector (see the module docs).
#[derive(Debug)]
pub struct Tracer {
    enabled: AtomicBool,
    epoch: Instant,
    token: u64,
    ring_cap: usize,
    next_id: AtomicU64,
    next_tid: AtomicU64,
    rings: Mutex<Vec<Arc<Ring>>>,
}

/// Distinguishes tracers in the per-thread ring cache.
static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);

struct ThreadCtx {
    token: u64,
    tracer: Arc<Tracer>,
    ring: Arc<Ring>,
    stack: Vec<u64>,
}

thread_local! {
    /// The tracer attached to this thread, if any.
    static CURRENT: RefCell<Option<ThreadCtx>> = const { RefCell::new(None) };
    /// Ring cache: one ring per (tracer token) per thread, so repeated
    /// attaches in a worker loop reuse the same ring.
    static RINGS: RefCell<Vec<(u64, Arc<Ring>)>> = const { RefCell::new(Vec::new()) };
}

impl Tracer {
    /// New tracer; `enabled` decides whether spans are recorded at all.
    pub fn new(enabled: bool, ring_cap: usize) -> Tracer {
        Tracer {
            enabled: AtomicBool::new(enabled),
            epoch: Instant::now(),
            token: NEXT_TOKEN.fetch_add(1, Ordering::Relaxed),
            ring_cap: ring_cap.max(2),
            next_id: AtomicU64::new(0),
            next_tid: AtomicU64::new(0),
            rings: Mutex::new(Vec::new()),
        }
    }

    /// Is span recording on?
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Toggle span recording (harness convenience).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn thread_ring(self: &Arc<Tracer>) -> Arc<Ring> {
        RINGS.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some((_, ring)) = cache.iter().find(|(t, _)| *t == self.token) {
                return Arc::clone(ring);
            }
            let ring = Arc::new(Ring {
                tid: self.next_tid.fetch_add(1, Ordering::Relaxed),
                spans: Mutex::new(VecDeque::with_capacity(self.ring_cap.min(64))),
                dropped: AtomicU64::new(0),
            });
            self.rings.lock().push(Arc::clone(&ring));
            cache.push((self.token, Arc::clone(&ring)));
            ring
        })
    }

    /// Attach this tracer to the current thread for the guard's lifetime.
    /// No-op (and allocation-free) when disabled or already attached.
    pub fn attach(self: &Arc<Tracer>) -> AttachGuard {
        if !self.is_enabled() {
            return AttachGuard(AttachState::Inactive);
        }
        let already = CURRENT.with(|c| {
            c.borrow()
                .as_ref()
                .is_some_and(|ctx| ctx.token == self.token)
        });
        if already {
            return AttachGuard(AttachState::Inactive);
        }
        let ring = self.thread_ring();
        let prev = CURRENT.with(|c| {
            c.borrow_mut().replace(ThreadCtx {
                token: self.token,
                tracer: Arc::clone(self),
                ring,
                stack: Vec::new(),
            })
        });
        AttachGuard(AttachState::Installed(prev))
    }

    /// All recorded spans, sorted by start time, with parent links that
    /// point at evicted spans cleared to 0.
    pub fn export_spans(&self) -> Vec<SpanRecord> {
        let rings = self.rings.lock();
        let mut out: Vec<SpanRecord> = Vec::new();
        for ring in rings.iter() {
            out.extend(ring.spans.lock().iter().cloned());
        }
        drop(rings);
        out.sort_by_key(|s| (s.start_ns, s.id));
        let ids: std::collections::HashSet<u64> = out.iter().map(|s| s.id).collect();
        for s in &mut out {
            if s.parent != 0 && !ids.contains(&s.parent) {
                s.parent = 0;
            }
        }
        out
    }

    /// Spans evicted from full rings so far.
    pub fn dropped(&self) -> u64 {
        self.rings
            .lock()
            .iter()
            .map(|r| r.dropped.load(Ordering::Relaxed))
            .sum()
    }

    /// Discard all recorded spans (rings stay registered).
    pub fn clear(&self) {
        for ring in self.rings.lock().iter() {
            ring.spans.lock().clear();
        }
    }

    /// Chrome trace-event JSON (complete `"ph":"X"` events, microsecond
    /// timestamps), loadable in `chrome://tracing` / Perfetto.
    pub fn export_chrome_json(&self) -> String {
        let spans = self.export_spans();
        let mut out = String::from("{\"traceEvents\":[");
        for (i, s) in spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            out.push_str(s.name);
            out.push_str("\",\"cat\":\"imp\",\"ph\":\"X\",\"ts\":");
            out.push_str(&format!("{:.3}", s.start_ns as f64 / 1000.0));
            out.push_str(",\"dur\":");
            out.push_str(&format!("{:.3}", s.dur_ns as f64 / 1000.0));
            out.push_str(",\"pid\":1,\"tid\":");
            out.push_str(&s.tid.to_string());
            out.push_str(",\"args\":{\"id\":");
            out.push_str(&s.id.to_string());
            out.push_str(",\"parent\":");
            out.push_str(&s.parent.to_string());
            out.push_str("}}");
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

enum AttachState {
    /// Tracer disabled or already attached here: nothing to undo.
    Inactive,
    /// Installed on this thread; restore the previous context on drop.
    Installed(Option<ThreadCtx>),
}

/// Keeps the tracer attached to the current thread; restores the
/// previous attachment (if any) on drop.
pub struct AttachGuard(AttachState);

impl AttachGuard {
    /// A guard that neither installed nor restores anything.
    pub fn inactive() -> AttachGuard {
        AttachGuard(AttachState::Inactive)
    }
}

impl Drop for AttachGuard {
    fn drop(&mut self) {
        if let AttachState::Installed(prev) = std::mem::replace(&mut self.0, AttachState::Inactive)
        {
            CURRENT.with(|c| {
                *c.borrow_mut() = prev;
            });
        }
    }
}

struct SpanActive {
    id: u64,
    parent: u64,
    name: &'static str,
    start_ns: u64,
}

/// Live span guard; records into the attached tracer's ring on drop.
pub struct Span(Option<SpanActive>);

impl Span {
    /// A span that records nothing (the detached/disabled path).
    pub fn noop() -> Span {
        Span(None)
    }
}

/// Open a span named `name` on the tracer attached to this thread; a
/// no-op [`Span`] when none is attached. The parent is the innermost
/// span still open on this thread.
#[inline]
pub fn span(name: &'static str) -> Span {
    CURRENT.with(|c| {
        let mut cur = c.borrow_mut();
        match cur.as_mut() {
            None => Span(None),
            Some(ctx) => {
                let id = ctx.tracer.next_id.fetch_add(1, Ordering::Relaxed) + 1;
                let parent = ctx.stack.last().copied().unwrap_or(0);
                ctx.stack.push(id);
                Span(Some(SpanActive {
                    id,
                    parent,
                    name,
                    start_ns: ctx.tracer.now_ns(),
                }))
            }
        }
    })
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.0.take() else {
            return;
        };
        CURRENT.with(|c| {
            let mut cur = c.borrow_mut();
            let Some(ctx) = cur.as_mut() else {
                return;
            };
            let end = ctx.tracer.now_ns();
            // Defensive: unwind the stack to (and past) our id even if an
            // inner span leaked.
            while let Some(top) = ctx.stack.pop() {
                if top == active.id {
                    break;
                }
            }
            let record = SpanRecord {
                id: active.id,
                parent: active.parent,
                name: active.name,
                tid: ctx.ring.tid,
                start_ns: active.start_ns,
                dur_ns: end.saturating_sub(active.start_ns),
            };
            let mut spans = ctx.ring.spans.lock();
            if spans.len() >= ctx.tracer.ring_cap {
                spans.pop_front();
                ctx.ring.dropped.fetch_add(1, Ordering::Relaxed);
            }
            spans.push_back(record);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detached_span_is_noop() {
        let _s = span("nothing");
        // No tracer attached: nothing recorded anywhere, no panic.
    }

    #[test]
    fn spans_nest_with_parents() {
        let tracer = Arc::new(Tracer::new(true, 64));
        {
            let _g = tracer.attach();
            let _root = span("root");
            {
                let _child = span("child");
                let _grand = span("grand");
            }
            let _sibling = span("sibling");
        }
        let spans = tracer.export_spans();
        assert_eq!(spans.len(), 4);
        let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
        let root = by_name("root");
        let child = by_name("child");
        let grand = by_name("grand");
        let sibling = by_name("sibling");
        assert_eq!(root.parent, 0);
        assert_eq!(child.parent, root.id);
        assert_eq!(grand.parent, child.id);
        assert_eq!(sibling.parent, root.id);
        // Timestamps nest.
        assert!(child.start_ns >= root.start_ns);
        assert!(child.start_ns + child.dur_ns <= root.start_ns + root.dur_ns);
        assert!(grand.start_ns + grand.dur_ns <= child.start_ns + child.dur_ns);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Arc::new(Tracer::new(false, 64));
        {
            let _g = tracer.attach();
            let _s = span("invisible");
        }
        assert!(tracer.export_spans().is_empty());
    }

    #[test]
    fn ring_evicts_and_export_sanitizes_parents() {
        let tracer = Arc::new(Tracer::new(true, 4));
        {
            let _g = tracer.attach();
            let _root = span("root");
            for _ in 0..16 {
                let _child = span("child");
            }
        }
        assert!(tracer.dropped() > 0);
        let spans = tracer.export_spans();
        assert!(spans.len() <= 4);
        let ids: std::collections::HashSet<u64> = spans.iter().map(|s| s.id).collect();
        for s in &spans {
            assert!(s.parent == 0 || ids.contains(&s.parent), "dangling parent");
        }
    }

    #[test]
    fn nested_attach_is_idempotent() {
        let tracer = Arc::new(Tracer::new(true, 64));
        let _g1 = tracer.attach();
        let outer = span("outer");
        {
            let _g2 = tracer.attach(); // same tracer: must not reset the stack
            let inner = span("inner");
            drop(inner);
        }
        drop(outer);
        drop(_g1);
        let spans = tracer.export_spans();
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(inner.parent, outer.id);
    }

    #[test]
    fn chrome_export_shape() {
        let tracer = Arc::new(Tracer::new(true, 64));
        {
            let _g = tracer.attach();
            let _s = span("work");
        }
        let json = tracer.export_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"work\""));
        assert!(json.ends_with("}"));
    }
}
