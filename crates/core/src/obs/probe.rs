//! Typed pipeline events and the `Probe` subscriber registry.
//!
//! Harnesses and tests subscribe a [`Probe`] to observe the pipeline —
//! staging, ingest, fan-out, claims, maintenance runs, snapshot
//! publishes, query answers — as typed [`ObsEvent`]s instead of reaching
//! into scheduler internals. Emission sites pass a closure, which is only
//! evaluated when at least one subscriber exists: with no subscribers an
//! emit is a single relaxed atomic load and allocates nothing.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// One pipeline event (fields are plain values; build cost is only paid
/// when a subscriber is registered).
#[derive(Debug, Clone, PartialEq)]
pub enum ObsEvent {
    /// An update batch entered the staging queue (or fell back inline).
    UpdateStaged {
        /// Base table the delta targets.
        table: String,
        /// False when backpressure forced the inline-ingest fallback.
        queued: bool,
    },
    /// The router collected one table's staged deltas.
    RouterIngest {
        /// Base table collected.
        table: String,
        /// Delta rows routed out of the collect.
        rows: u64,
        /// Distinct shards the batches fan out to.
        shards: usize,
    },
    /// Batches landed in one shard's inbox.
    FanOut {
        /// Destination shard.
        shard: usize,
        /// Batches appended (post-coalescing).
        batches: usize,
    },
    /// A worker claimed a batch run from an inbox.
    ShardClaim {
        /// Inbox the run came from.
        shard: usize,
        /// Worker that claimed it (differs from `shard` on a steal).
        worker: usize,
        /// True when claimed by a thief.
        stolen: bool,
        /// Batches in the claimed run.
        batches: u64,
    },
    /// One sketch maintenance run finished.
    MaintainRun {
        /// Canonical template text of the maintained sketch.
        template: String,
        /// Wall-clock nanoseconds of the run.
        nanos: u64,
        /// Delta rows consumed.
        delta_rows: u64,
        /// True when the run fell back to recapture.
        recaptured: bool,
    },
    /// A shard published a fresh snapshot onto the board.
    SnapshotPublish {
        /// Publishing shard.
        shard: usize,
        /// Sketch entries in the published snapshot.
        sketches: usize,
    },
    /// A health watchdog rule fired (see [`crate::obs::health`]).
    WatchdogFired {
        /// Rule family name (`shard_liveness`, `queue_depth`,
        /// `backpressure_stalls`, `maintain_p99_slo`).
        rule: &'static str,
        /// Human-readable specifics of the firing.
        detail: String,
    },
    /// The middleware answered a SELECT.
    QueryAnswered {
        /// How the sketch store served it (`"capture"`, `"fresh"`,
        /// `"maintained"`, `"none"`).
        mode: &'static str,
        /// End-to-end nanoseconds inside the middleware.
        nanos: u64,
    },
}

/// Subscriber interface. Callbacks run on the emitting thread (which may
/// be a shard worker) — keep them fast and non-blocking.
pub trait Probe: Send + Sync {
    /// Observe one event.
    fn on_event(&self, event: &ObsEvent);
}

/// Subscriber registry with an allocation-free no-subscriber fast path.
#[derive(Default)]
pub struct ProbeHub {
    has_probes: AtomicBool,
    probes: Mutex<Vec<Arc<dyn Probe>>>,
}

impl std::fmt::Debug for ProbeHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProbeHub")
            .field("subscribers", &self.probes.lock().len())
            .finish()
    }
}

impl ProbeHub {
    /// Empty hub.
    pub fn new() -> ProbeHub {
        ProbeHub::default()
    }

    /// Register a subscriber (kept for the hub's lifetime).
    pub fn subscribe(&self, probe: Arc<dyn Probe>) {
        self.probes.lock().push(probe);
        self.has_probes.store(true, Ordering::Release);
    }

    /// Emit the event built by `f` to all subscribers; `f` is not called
    /// when there are none.
    #[inline]
    pub fn emit(&self, f: impl FnOnce() -> ObsEvent) {
        if !self.has_probes.load(Ordering::Acquire) {
            return;
        }
        let event = f();
        for p in self.probes.lock().iter() {
            p.on_event(&event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    struct CountingProbe(AtomicUsize);

    impl Probe for CountingProbe {
        fn on_event(&self, _event: &ObsEvent) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn emit_skips_closure_without_subscribers() {
        let hub = ProbeHub::new();
        hub.emit(|| panic!("must not build the event"));
    }

    #[test]
    fn subscribers_see_events() {
        let hub = ProbeHub::new();
        let probe = Arc::new(CountingProbe(AtomicUsize::new(0)));
        hub.subscribe(Arc::clone(&probe) as Arc<dyn Probe>);
        hub.emit(|| ObsEvent::FanOut {
            shard: 0,
            batches: 1,
        });
        hub.emit(|| ObsEvent::QueryAnswered {
            mode: "fresh",
            nanos: 5,
        });
        assert_eq!(probe.0.load(Ordering::Relaxed), 2);
    }
}
