//! `imp_core::obs` — unified observability: metrics registry, latency
//! histograms, pipeline tracing, and typed probe events.
//!
//! The paper's evaluation is built on post-hoc cost counters; this module
//! is the runtime view. One [`Obs`] instance per [`crate::middleware::Imp`]
//! ties together:
//!
//! * **[`registry`]** — a [`MetricsRegistry`] unifying counters, gauges,
//!   and lock-free log-bucketed latency [`hist`]ograms under one
//!   `(name, labels)` namespace. The scheduler's
//!   [`crate::metrics::SchedMetrics`] counters and per-shard queue gauges
//!   register here, and the USE/maintain paths record latency histograms
//!   keyed per template (`imp_maintain_latency_ns{template=…}`), so every
//!   sketch gets its own maintain-latency distribution with
//!   `p50/p90/p99/max` extraction. Exports: Prometheus-style text
//!   ([`Obs::metrics_text`]) and a deterministic JSON snapshot
//!   ([`Obs::metrics_json`]).
//! * **[`trace`]** — bounded per-thread span rings instrumenting the full
//!   pipeline: update staged → router ingest → fan-out → shard
//!   claim/steal → per-term join maintenance (binary and n-ary probe
//!   phases) → snapshot publish. Spans carry ids, parent links, and
//!   monotonic timestamps; [`Obs::trace_chrome_json`] renders Chrome
//!   trace-event JSON loadable in `chrome://tracing`.
//! * **[`probe`]** — a [`Probe`] subscriber registry emitting typed
//!   [`ObsEvent`]s, so harnesses and tests observe the pipeline without
//!   reaching into scheduler internals.
//!
//! Everything is gated by [`ObsConfig`] (`ImpConfig::obs`, `IMP_OBS=1` in
//! the harnesses): with obs off, the hot-path cost is a branch on a plain
//! bool or a relaxed atomic load, and **no allocation** — asserted by the
//! counting-allocator test in `tests/obs_alloc.rs`. Enabling obs never
//! changes sketch states or query answers (`tests/obs_differential.rs`),
//! and full instrumentation stays within 10% of disabled wall clock at
//! smoke scale (`tests/obs_overhead.rs`).

pub mod flight;
pub mod health;
pub mod hist;
pub mod kernel;
pub mod probe;
pub mod registry;
pub mod trace;

use std::sync::Arc;

pub use flight::{FlightEvent, FlightRecord, FlightRecorder};
pub use health::{
    FiringRule, HealthConfig, HealthMonitor, HealthReport, HealthState, HealthTicker, Verdict,
};
pub use hist::{HistSnapshot, LatencyHistogram};
pub use kernel::{KernelHub, KernelPath};
pub use probe::{ObsEvent, Probe};
pub use registry::{Counter, Gauge, Histogram, MetricSample, MetricsRegistry, SampleValue};
pub use trace::{SpanRecord, Tracer};

/// Per-template maintain-latency histogram name.
pub const MAINTAIN_LATENCY: &str = "imp_maintain_latency_ns";
/// USE-path query-latency histogram name (labeled by answer mode).
pub const QUERY_LATENCY: &str = "imp_query_latency_ns";

/// Observability configuration (`ImpConfig::obs`).
#[derive(Debug, Clone, PartialEq)]
pub struct ObsConfig {
    /// Master switch: latency histograms, timed paths, tracing.
    pub enabled: bool,
    /// Record pipeline spans (only meaningful when `enabled`).
    pub trace: bool,
    /// Per-thread span ring capacity.
    pub trace_ring_cap: usize,
    /// Flight-recorder ring capacity (slots). The flight recorder is
    /// **always on** regardless of `enabled` — post-mortems must not
    /// require reproducing under `IMP_OBS=1`.
    pub flight_cap: usize,
}

impl Default for ObsConfig {
    fn default() -> ObsConfig {
        ObsConfig {
            enabled: false,
            trace: true,
            trace_ring_cap: trace::DEFAULT_RING_CAP,
            flight_cap: flight::DEFAULT_FLIGHT_CAP,
        }
    }
}

impl ObsConfig {
    /// Fully enabled (histograms + tracing).
    pub fn on() -> ObsConfig {
        ObsConfig {
            enabled: true,
            ..ObsConfig::default()
        }
    }

    /// Enabled with tracing off (histograms and probes only).
    pub fn metrics_only() -> ObsConfig {
        ObsConfig {
            enabled: true,
            trace: false,
            ..ObsConfig::default()
        }
    }
}

/// The per-`Imp` observability hub (see the module docs).
#[derive(Debug)]
pub struct Obs {
    enabled: bool,
    registry: MetricsRegistry,
    tracer: Arc<Tracer>,
    probes: probe::ProbeHub,
    flight: Arc<FlightRecorder>,
    kernel: Option<Arc<KernelHub>>,
}

impl Obs {
    /// Build from config. The registry always exists (scheduler counters
    /// register unconditionally — they predate this module and are nearly
    /// free); `enabled` gates timing, histograms, and tracing. The
    /// flight recorder is always on (and registered with the process
    /// panic hook); only its capacity comes from the config.
    pub fn new(config: &ObsConfig) -> Arc<Obs> {
        let registry = MetricsRegistry::new();
        let kernel = config.enabled.then(|| KernelHub::registered(&registry));
        let flight = Arc::new(FlightRecorder::new(config.flight_cap));
        flight::register_panic_dump(&flight);
        Arc::new(Obs {
            enabled: config.enabled,
            registry,
            tracer: Arc::new(Tracer::new(
                config.enabled && config.trace,
                config.trace_ring_cap,
            )),
            probes: probe::ProbeHub::new(),
            flight,
            kernel,
        })
    }

    /// A disabled hub (the default for `ImpConfig::default()`).
    pub fn off() -> Arc<Obs> {
        Obs::new(&ObsConfig::default())
    }

    /// Is the observability layer on?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The unified metrics registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The span collector.
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// Attach the tracer to the current thread (no-op when tracing is
    /// off) so that [`trace::span`] calls made from this thread record
    /// here. Pipeline entry points hold one of these across their work.
    #[inline]
    pub fn attach(&self) -> trace::AttachGuard {
        self.tracer.attach()
    }

    /// Attach and open one span: the usual entry-point pattern. Returns a
    /// cheap no-op when tracing is off. Whenever obs is enabled (tracing
    /// on or not), the span also attaches the kernel-timing hub to the
    /// thread, so [`kernel::timed`] dispatch sites under this entry
    /// point record their columnar/row batch timings.
    #[inline]
    pub fn span(&self, name: &'static str) -> PipelineSpan {
        let kernel = match &self.kernel {
            Some(hub) => kernel::attach(hub),
            None => kernel::KernelAttachGuard::inactive(),
        };
        if !self.tracer.is_enabled() {
            return PipelineSpan {
                span: trace::Span::noop(),
                _attach: trace::AttachGuard::inactive(),
                _kernel: kernel,
            };
        }
        let attach = self.tracer.attach();
        PipelineSpan {
            span: trace::span(name),
            _attach: attach,
            _kernel: kernel,
        }
    }

    /// Register a probe subscriber.
    pub fn subscribe(&self, probe: Arc<dyn Probe>) {
        self.probes.subscribe(probe);
    }

    /// Emit a typed event (closure evaluated only with subscribers).
    #[inline]
    pub fn emit(&self, f: impl FnOnce() -> ObsEvent) {
        self.probes.emit(f);
    }

    /// Record one maintenance run: per-template latency histogram (when
    /// enabled), an always-on flight-recorder event, plus a
    /// [`ObsEvent::MaintainRun`] probe event.
    pub fn maintain_observed(&self, template: &str, nanos: u64, delta_rows: u64, recaptured: bool) {
        self.maintain_observed_spanned(template, nanos, delta_rows, recaptured, 0, 0);
    }

    /// [`Self::maintain_observed`] with the maintained database-version
    /// span (the sched call sites know it; `0,0` when unknown).
    pub fn maintain_observed_spanned(
        &self,
        template: &str,
        nanos: u64,
        delta_rows: u64,
        recaptured: bool,
        from_version: u64,
        to_version: u64,
    ) {
        if self.enabled {
            self.registry
                .histogram_with(MAINTAIN_LATENCY, &[("template", template)])
                .record(nanos);
        }
        self.flight.record(FlightEvent::Maintained {
            template: flight::fid(template),
            versions: (from_version << 32) | (to_version & 0xffff_ffff),
            rows: delta_rows,
            dur_ns: nanos,
        });
        self.probes.emit(|| ObsEvent::MaintainRun {
            template: template.to_string(),
            nanos,
            delta_rows,
            recaptured,
        });
    }

    /// Record one answered SELECT: mode-labeled latency histogram (when
    /// enabled) plus a [`ObsEvent::QueryAnswered`] probe event.
    pub fn query_observed(&self, mode: &'static str, nanos: u64) {
        if self.enabled {
            self.registry
                .histogram_with(QUERY_LATENCY, &[("mode", mode)])
                .record(nanos);
        }
        self.probes.emit(|| ObsEvent::QueryAnswered { mode, nanos });
    }

    /// All maintain-latency samples merged across templates.
    pub fn maintain_latency(&self) -> Option<HistSnapshot> {
        self.registry.merged_histogram(MAINTAIN_LATENCY)
    }

    /// Prometheus-style text exposition of the whole registry.
    pub fn metrics_text(&self) -> String {
        self.registry.render_text()
    }

    /// Deterministic JSON snapshot of the whole registry.
    pub fn metrics_json(&self) -> String {
        self.registry.render_json()
    }

    /// Chrome trace-event JSON of all recorded spans.
    pub fn trace_chrome_json(&self) -> String {
        self.tracer.export_chrome_json()
    }

    /// The always-on flight recorder.
    pub fn flight(&self) -> &Arc<FlightRecorder> {
        &self.flight
    }

    /// Deterministic JSON dump of everything the flight recorder retains.
    pub fn flight_dump(&self) -> String {
        self.flight.dump_json(u64::MAX)
    }

    /// The kernel-timing hub (present iff obs is enabled).
    pub fn kernel_hub(&self) -> Option<&Arc<KernelHub>> {
        self.kernel.as_ref()
    }
}

/// An attached entry-point span (see [`Obs::span`]). Field order matters:
/// the span must drop (and record) before the attach guards detach.
pub struct PipelineSpan {
    span: trace::Span,
    _attach: trace::AttachGuard,
    _kernel: kernel::KernelAttachGuard,
}

impl PipelineSpan {
    /// Consume, keeping only the guard parts (for explicit early close).
    pub fn close(self) {
        drop(self.span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_obs_records_no_metrics() {
        let obs = Obs::off();
        obs.maintain_observed("q", 123, 4, false);
        obs.query_observed("fresh", 55);
        assert!(obs.registry().is_empty());
        assert!(obs.maintain_latency().is_none());
        {
            let _s = obs.span("nothing");
        }
        assert!(obs.tracer().export_spans().is_empty());
    }

    #[test]
    fn enabled_obs_builds_per_template_histograms() {
        let obs = Obs::new(&ObsConfig::on());
        obs.maintain_observed("q1", 100, 1, false);
        obs.maintain_observed("q1", 200, 1, false);
        obs.maintain_observed("q2", 300, 1, true);
        let merged = obs.maintain_latency().unwrap();
        assert_eq!(merged.count, 3);
        let text = obs.metrics_text();
        assert!(text.contains("imp_maintain_latency_ns_count{template=\"q1\"} 2"));
        assert!(text.contains("imp_maintain_latency_ns_count{template=\"q2\"} 1"));
    }

    #[test]
    fn span_records_through_facade() {
        let obs = Obs::new(&ObsConfig::on());
        {
            let _outer = obs.span("outer");
            let _inner = trace::span("inner");
        }
        let spans = obs.tracer().export_spans();
        assert_eq!(spans.len(), 2);
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(inner.parent, outer.id);
        let json = obs.trace_chrome_json();
        assert!(json.contains("\"traceEvents\""));
    }

    #[test]
    fn flight_records_even_when_disabled() {
        let obs = Obs::off();
        obs.maintain_observed("q", 123, 4, false);
        assert!(obs.registry().is_empty(), "flight must not touch metrics");
        let events = obs.flight().events(u64::MAX);
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0].event,
            FlightEvent::Maintained {
                template: flight::fid("q"),
                versions: 0,
                rows: 4,
                dur_ns: 123,
            }
        );
        assert!(obs.flight_dump().contains("\"kind\":\"maintained\""));
    }

    #[test]
    fn enabled_span_attaches_kernel_timing() {
        let obs = Obs::new(&ObsConfig::metrics_only());
        {
            let _s = obs.span("maintain");
            kernel::timed(KernelPath::Row, 3, || {});
        }
        // Outside the span nothing is attached.
        kernel::timed(KernelPath::Row, 100, || {});
        let text = obs.metrics_text();
        assert!(text.contains("imp_kernel_ns_count{path=\"row\"} 1"));
        assert!(text.contains("imp_kernel_rows{path=\"row\"} 3"));
    }

    #[test]
    fn metrics_only_disables_tracing() {
        let obs = Obs::new(&ObsConfig::metrics_only());
        {
            let _s = obs.span("invisible");
        }
        assert!(obs.tracer().export_spans().is_empty());
        obs.maintain_observed("q", 10, 0, false);
        assert_eq!(obs.maintain_latency().unwrap().count, 1);
    }
}
