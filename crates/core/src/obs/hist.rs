//! Lock-free log-bucketed latency histograms.
//!
//! A [`LatencyHistogram`] records `u64` samples (by convention
//! nanoseconds) into logarithmically spaced atomic buckets: values below
//! 8 get one exact bucket each, and every power-of-two octave above that
//! is split into 4 sub-buckets, so the relative width of any bucket is at
//! most 25%. Recording is a handful of relaxed atomic adds — no locks, no
//! allocation — so histograms can sit on the maintenance hot path and be
//! shared across shard workers. Two histograms merge by adding buckets,
//! which is exactly equivalent to recording the union of their samples
//! (property-tested in `tests/obs_props.rs`).
//!
//! Percentiles come from a [`HistSnapshot`]: the reported quantile is the
//! upper bound of the bucket containing the true order statistic (clamped
//! to the observed maximum), so the error is bounded by the bucket width.

use std::sync::atomic::{AtomicU64, Ordering};

/// Buckets 0..8 are exact; octaves 3..=63 get 4 sub-buckets each.
pub const BUCKETS: usize = 8 + 61 * 4;

/// Bucket index of a sample value.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < 8 {
        v as usize
    } else {
        let m = 63 - v.leading_zeros() as usize; // 3..=63
        let sub = ((v >> (m - 2)) & 3) as usize;
        8 + (m - 3) * 4 + sub
    }
}

/// Largest value that lands in bucket `b` (inclusive).
pub fn bucket_upper_bound(b: usize) -> u64 {
    if b < 8 {
        b as u64
    } else {
        let m = (3 + (b - 8) / 4) as u32;
        let sub = ((b - 8) % 4) as u128;
        let upper = (1u128 << m) + (sub + 1) * (1u128 << (m - 2)) - 1;
        u64::try_from(upper).unwrap_or(u64::MAX)
    }
}

/// Lock-free log-bucketed histogram (see the module docs).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// Empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample. Relaxed atomics only; safe on hot paths.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Fold `other`'s samples into `self`. Bucket-wise addition, so
    /// `a.merge_from(&b)` leaves `a` indistinguishable from a histogram
    /// that recorded both sample sets.
    pub fn merge_from(&self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n != 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Consistent-enough point-in-time copy for percentile extraction.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value copy of a histogram; all percentile math happens here.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket sample counts (length [`BUCKETS`]).
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample seen.
    pub max: u64,
}

impl HistSnapshot {
    /// Empty snapshot (for merging loops).
    pub fn empty() -> HistSnapshot {
        HistSnapshot {
            buckets: vec![0; BUCKETS],
            ..HistSnapshot::default()
        }
    }

    /// Fold another snapshot into this one. The sum wraps, exactly like
    /// the atomic accumulator in [`LatencyHistogram::record`] does.
    pub fn merge(&mut self, other: &HistSnapshot) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Quantile estimate: the upper bound of the bucket holding the
    /// `q`-th order statistic, clamped to the observed max. `q` in
    /// `[0, 1]`; returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (b, n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                return bucket_upper_bound(b).min(self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Arithmetic mean (0 on empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_u64_monotonically() {
        // Upper bounds strictly increase and every value maps into range.
        let mut prev = bucket_upper_bound(0);
        for b in 1..BUCKETS {
            let ub = bucket_upper_bound(b);
            assert!(ub > prev, "bucket {b}: {ub} <= {prev}");
            prev = ub;
        }
        assert_eq!(bucket_upper_bound(BUCKETS - 1), u64::MAX);
        for v in [0u64, 1, 7, 8, 9, 1023, 1024, 1_000_000, u64::MAX] {
            let b = bucket_index(v);
            assert!(b < BUCKETS);
            assert!(v <= bucket_upper_bound(b), "v={v} b={b}");
            if b > 0 {
                assert!(v > bucket_upper_bound(b - 1), "v={v} b={b}");
            }
        }
    }

    #[test]
    fn exact_below_eight() {
        for v in 0..8u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper_bound(v as usize), v);
        }
    }

    #[test]
    fn relative_width_bounded() {
        // Every log bucket's width is at most 25% of its lower bound.
        for b in 8..BUCKETS - 1 {
            let lo = bucket_upper_bound(b - 1) as f64 + 1.0;
            let hi = bucket_upper_bound(b) as f64;
            assert!(hi - lo + 1.0 <= lo * 0.25 + 1.0, "bucket {b} too wide");
        }
    }

    #[test]
    fn percentiles_on_known_data() {
        let h = LatencyHistogram::new();
        for v in 1..=100u64 {
            h.record(v * 1000);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.max, 100_000);
        // p50's true order statistic is 50_000; the estimate lands in the
        // same bucket.
        let p50 = s.p50();
        assert_eq!(bucket_index(p50), bucket_index(50_000));
        assert_eq!(s.quantile(1.0), 100_000);
        assert_eq!(s.quantile(0.0), s.quantile(1.0 / 100.0));
    }

    #[test]
    fn empty_is_zero() {
        let s = LatencyHistogram::new().snapshot();
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.mean(), 0.0);
    }
}
