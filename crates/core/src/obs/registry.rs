//! Unified metrics registry: counters, gauges, and latency histograms
//! under one `(name, labels)` namespace with two deterministic exports.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap clones of
//! `Arc`-shared atomics — registration takes the registry lock once, and
//! every update after that is a relaxed atomic on the shared cell. The
//! scheduler's [`crate::metrics::SchedMetrics`] counters and per-shard
//! queue gauges are registered here, so one exposition shows routing,
//! stealing, backlog depth, and per-template maintain latency together.
//!
//! Exports:
//! * [`MetricsRegistry::render_text`] — Prometheus-style text exposition
//!   (histograms as cumulative `_bucket{le=…}` series plus `_sum`,
//!   `_count`, and a `_max` gauge);
//! * [`MetricsRegistry::render_json`] — a deterministic JSON snapshot
//!   (sorted by name, then labels) with `p50/p90/p99/max` extracted per
//!   histogram, consumed by the bench harnesses and the CI obs smoke.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use super::hist::{bucket_upper_bound, HistSnapshot, LatencyHistogram};

/// Sorted label set attached to one metric series.
pub type Labels = Vec<(String, String)>;

/// Monotone counter handle.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Standalone counter not attached to any registry (tests, detached
    /// [`crate::metrics::SchedMetrics`]).
    pub fn detached() -> Counter {
        Counter::default()
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Up/down gauge handle.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Standalone gauge not attached to any registry.
    pub fn detached() -> Gauge {
        Gauge::default()
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add 1 and return the new value (for high-water tracking).
    #[inline]
    pub fn inc_get(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Subtract 1, saturating at 0: a mismatched decrement must not wrap
    /// the gauge to `u64::MAX` (which would poison consumers like the
    /// steal path's deepest-backlog victim selection).
    #[inline]
    pub fn dec_saturating(&self) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1));
    }

    /// Raise the value to at least `v`.
    #[inline]
    pub fn max_of(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Histogram handle (see [`LatencyHistogram`]).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<LatencyHistogram>);

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram(Arc::new(LatencyHistogram::new()))
    }
}

impl Histogram {
    /// Record one sample (nanoseconds by convention).
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.record(v);
    }

    /// Point-in-time copy.
    pub fn snapshot(&self) -> HistSnapshot {
        self.0.snapshot()
    }
}

#[derive(Debug)]
enum Slot {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Hist(Arc<LatencyHistogram>),
}

impl Slot {
    fn kind(&self) -> &'static str {
        match self {
            Slot::Counter(_) => "counter",
            Slot::Gauge(_) => "gauge",
            Slot::Hist(_) => "histogram",
        }
    }
}

/// One series captured by [`MetricsRegistry::sample`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Metric name.
    pub name: String,
    /// Sorted label set.
    pub labels: Labels,
    /// Point-in-time value.
    pub value: SampleValue,
}

impl MetricSample {
    /// The value of the label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Point-in-time value of one sampled series.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// Monotone counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(u64),
    /// Full histogram snapshot (bucket-wise subtractable for windowing).
    Histogram(HistSnapshot),
}

impl SampleValue {
    /// The scalar value of a counter or gauge (`None` for histograms).
    pub fn scalar(&self) -> Option<u64> {
        match self {
            SampleValue::Counter(v) | SampleValue::Gauge(v) => Some(*v),
            SampleValue::Histogram(_) => None,
        }
    }
}

/// The unified registry (see the module docs).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    slots: Mutex<BTreeMap<(String, Labels), Slot>>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Get or register the counter `name` with no labels.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// Get or register the counter `name{labels}`.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let mut slots = self.slots.lock();
        let slot = slots
            .entry(key(name, labels))
            .or_insert_with(|| Slot::Counter(Arc::new(AtomicU64::new(0))));
        match slot {
            Slot::Counter(a) => Counter(Arc::clone(a)),
            other => panic!("metric {name} already registered as {}", other.kind()),
        }
    }

    /// Get or register the gauge `name` with no labels.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// Get or register the gauge `name{labels}`.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let mut slots = self.slots.lock();
        let slot = slots
            .entry(key(name, labels))
            .or_insert_with(|| Slot::Gauge(Arc::new(AtomicU64::new(0))));
        match slot {
            Slot::Gauge(a) => Gauge(Arc::clone(a)),
            other => panic!("metric {name} already registered as {}", other.kind()),
        }
    }

    /// Get or register the histogram `name` with no labels.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, &[])
    }

    /// Get or register the histogram `name{labels}`.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let mut slots = self.slots.lock();
        let slot = slots
            .entry(key(name, labels))
            .or_insert_with(|| Slot::Hist(Arc::new(LatencyHistogram::new())));
        match slot {
            Slot::Hist(h) => Histogram(Arc::clone(h)),
            other => panic!("metric {name} already registered as {}", other.kind()),
        }
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        self.slots.lock().len()
    }

    /// True iff nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.slots.lock().is_empty()
    }

    /// Snapshot every registered series as plain values, sorted by name
    /// then labels (the registry's natural order). This is the read API
    /// the health watchdogs and the obsd `/sketches` endpoint consume:
    /// one lock hold, no references into the registry escape, so readers
    /// never block recorders beyond the snapshot instant.
    pub fn sample(&self) -> Vec<MetricSample> {
        let slots = self.slots.lock();
        slots
            .iter()
            .map(|((name, labels), slot)| MetricSample {
                name: name.clone(),
                labels: labels.clone(),
                value: match slot {
                    Slot::Counter(a) => SampleValue::Counter(a.load(Ordering::Relaxed)),
                    Slot::Gauge(a) => SampleValue::Gauge(a.load(Ordering::Relaxed)),
                    Slot::Hist(h) => SampleValue::Histogram(h.snapshot()),
                },
            })
            .collect()
    }

    /// Merge every histogram series named `name` (across label sets) into
    /// one snapshot; `None` if no such series exists.
    pub fn merged_histogram(&self, name: &str) -> Option<HistSnapshot> {
        let slots = self.slots.lock();
        let mut out: Option<HistSnapshot> = None;
        for ((n, _), slot) in slots.iter() {
            if n == name {
                if let Slot::Hist(h) = slot {
                    out.get_or_insert_with(HistSnapshot::empty)
                        .merge(&h.snapshot());
                }
            }
        }
        out
    }

    /// Prometheus-style text exposition. Deterministic: series sorted by
    /// name then labels; histogram buckets emitted cumulatively for
    /// non-empty buckets plus `+Inf`.
    pub fn render_text(&self) -> String {
        let slots = self.slots.lock();
        let mut out = String::new();
        let mut last_name = "";
        for ((name, labels), slot) in slots.iter() {
            if name != last_name {
                out.push_str("# TYPE ");
                out.push_str(name);
                out.push(' ');
                out.push_str(slot.kind());
                out.push('\n');
                last_name = name;
            }
            match slot {
                Slot::Counter(a) | Slot::Gauge(a) => {
                    out.push_str(name);
                    push_labels(&mut out, labels, None);
                    out.push(' ');
                    out.push_str(&a.load(Ordering::Relaxed).to_string());
                    out.push('\n');
                }
                Slot::Hist(h) => {
                    let s = h.snapshot();
                    let mut cum = 0u64;
                    for (b, n) in s.buckets.iter().enumerate() {
                        if *n == 0 {
                            continue;
                        }
                        cum += n;
                        out.push_str(name);
                        out.push_str("_bucket");
                        push_labels(&mut out, labels, Some(&bucket_upper_bound(b).to_string()));
                        out.push(' ');
                        out.push_str(&cum.to_string());
                        out.push('\n');
                    }
                    out.push_str(name);
                    out.push_str("_bucket");
                    push_labels(&mut out, labels, Some("+Inf"));
                    out.push(' ');
                    out.push_str(&s.count.to_string());
                    out.push('\n');
                    for (suffix, v) in [("_sum", s.sum), ("_count", s.count), ("_max", s.max)] {
                        out.push_str(name);
                        out.push_str(suffix);
                        push_labels(&mut out, labels, None);
                        out.push(' ');
                        out.push_str(&v.to_string());
                        out.push('\n');
                    }
                }
            }
        }
        out
    }

    /// Deterministic JSON snapshot:
    /// `{"metrics":[{"name":…,"labels":{…},"kind":…,…}]}` with
    /// `value` for counters/gauges and
    /// `count/sum/max/p50/p90/p99` plus non-empty `buckets` for
    /// histograms.
    pub fn render_json(&self) -> String {
        let slots = self.slots.lock();
        let mut out = String::from("{\"metrics\":[");
        for (i, ((name, labels), slot)) in slots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json_string(&mut out, name);
            out.push_str(",\"labels\":{");
            for (j, (k, v)) in labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                json_string(&mut out, k);
                out.push(':');
                json_string(&mut out, v);
            }
            out.push_str("},\"kind\":\"");
            out.push_str(slot.kind());
            out.push('"');
            match slot {
                Slot::Counter(a) | Slot::Gauge(a) => {
                    out.push_str(",\"value\":");
                    out.push_str(&a.load(Ordering::Relaxed).to_string());
                }
                Slot::Hist(h) => {
                    let s = h.snapshot();
                    for (k, v) in [
                        ("count", s.count),
                        ("sum", s.sum),
                        ("max", s.max),
                        ("p50", s.p50()),
                        ("p90", s.p90()),
                        ("p99", s.p99()),
                    ] {
                        out.push_str(",\"");
                        out.push_str(k);
                        out.push_str("\":");
                        out.push_str(&v.to_string());
                    }
                    out.push_str(",\"buckets\":[");
                    let mut first = true;
                    for (b, n) in s.buckets.iter().enumerate() {
                        if *n == 0 {
                            continue;
                        }
                        if !first {
                            out.push(',');
                        }
                        first = false;
                        out.push('[');
                        out.push_str(&bucket_upper_bound(b).to_string());
                        out.push(',');
                        out.push_str(&n.to_string());
                        out.push(']');
                    }
                    out.push(']');
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

fn key(name: &str, labels: &[(&str, &str)]) -> (String, Labels) {
    let mut l: Labels = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    l.sort();
    (name.to_string(), l)
}

/// Append `{k="v",…}` (plus an optional trailing `le`) to `out`.
fn push_labels(out: &mut String, labels: &Labels, le: Option<&str>) {
    if labels.is_empty() && le.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        escape_into(out, v);
        out.push('"');
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str("le=\"");
        out.push_str(le);
        out.push('"');
    }
    out.push('}');
}

fn escape_into(out: &mut String, v: &str) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Append `v` as a JSON string literal (shared with the health and
/// obsd JSON renderers).
pub(crate) fn json_string(out: &mut String, v: &str) {
    out.push('"');
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_the_cell() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("c");
        let b = reg.counter("c");
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 3);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn labels_make_distinct_series() {
        let reg = MetricsRegistry::new();
        reg.counter_with("c", &[("shard", "0")]).inc();
        reg.counter_with("c", &[("shard", "1")]).add(5);
        assert_eq!(reg.len(), 2);
        let text = reg.render_text();
        assert!(text.contains("c{shard=\"0\"} 1"));
        assert!(text.contains("c{shard=\"1\"} 5"));
        // One TYPE line for the shared name.
        assert_eq!(text.matches("# TYPE c counter").count(), 1);
    }

    #[test]
    fn gauge_saturates() {
        let g = Gauge::detached();
        g.dec_saturating();
        assert_eq!(g.get(), 0);
        g.add(2);
        g.dec_saturating();
        assert_eq!(g.get(), 1);
    }

    #[test]
    fn histogram_text_and_json_agree() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram_with("lat_ns", &[("template", "q1")]);
        for v in [10u64, 20, 30, 1000] {
            h.record(v);
        }
        let text = reg.render_text();
        assert!(text.contains("# TYPE lat_ns histogram"));
        assert!(text.contains("lat_ns_count{template=\"q1\"} 4"));
        assert!(text.contains("lat_ns_sum{template=\"q1\"} 1060"));
        assert!(text.contains("le=\"+Inf\"} 4"));
        let json = reg.render_json();
        assert!(json.contains("\"count\":4"));
        assert!(json.contains("\"sum\":1060"));
        assert!(json.contains("\"max\":1000"));
        // Deterministic output.
        assert_eq!(json, reg.render_json());
        assert_eq!(text, reg.render_text());
    }

    #[test]
    fn sample_captures_every_kind() {
        let reg = MetricsRegistry::new();
        reg.counter("c").add(3);
        reg.gauge_with("g", &[("shard", "1")]).set(7);
        reg.histogram("h").record(99);
        let samples = reg.sample();
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[0].name, "c");
        assert_eq!(samples[0].value, SampleValue::Counter(3));
        assert_eq!(samples[1].label("shard"), Some("1"));
        assert_eq!(samples[1].value.scalar(), Some(7));
        match &samples[2].value {
            SampleValue::Histogram(s) => assert_eq!(s.count, 1),
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }
}
