//! Declarative health watchdogs over registry snapshots.
//!
//! A [`HealthMonitor`] is evaluated once per tick (by the ticker thread
//! [`spawn_health_ticker`] starts, or directly in tests) against a
//! [`MetricsRegistry::sample`](super::registry::MetricsRegistry::sample)
//! snapshot — watchdogs never touch scheduler internals, locks, or the
//! store itself, so a wedged shard cannot wedge its own diagnosis. Four
//! rule families:
//!
//! * **`shard_liveness`** — a shard's `imp_sched_heartbeat` gauge did not
//!   advance since the previous tick while its `imp_sched_queue_depth`
//!   was non-zero: the worker is parked, deadlocked, or stuck inside one
//!   maintain with work waiting.
//! * **`queue_depth`** — a shard's inbox depth exceeds the configured
//!   limit (backlog building faster than it drains).
//! * **`backpressure_stalls`** — the `imp_sched_backpressure_stalls`
//!   counter advanced by more than the configured delta in one tick
//!   (writers are being punished inline).
//! * **`maintain_p99_slo`** — the windowed maintain-latency p99 exceeds
//!   the SLO in **both** a short (one tick) and a long
//!   ([`HealthConfig::long_window_ticks`]) window: the classic 2-window
//!   burn-rate alert, immune to both single-spike noise (short window
//!   alone) and stale history (cumulative histogram alone). Windows are
//!   bucket-wise differences of the cumulative histogram snapshots.
//!
//! Each firing rule is reported by name in the [`HealthReport`] (and on
//! `/health`), emitted as a typed [`ObsEvent::WatchdogFired`] through the
//! probe registry, and — on the ok→degraded transition — triggers a
//! flight-recorder dump captured in [`HealthState::trip_dump`].

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use super::hist::HistSnapshot;
use super::registry::{json_string, MetricSample, SampleValue};
use super::{Obs, ObsEvent, MAINTAIN_LATENCY};

/// Watchdog thresholds and cadence (`ImpConfig::health`).
#[derive(Debug, Clone, PartialEq)]
pub struct HealthConfig {
    /// Evaluation interval of the ticker thread.
    pub tick: Duration,
    /// `queue_depth` fires above this many queued batches on one shard.
    pub queue_depth_limit: u64,
    /// `backpressure_stalls` fires when the stall counter advances by at
    /// least this much within one tick.
    pub stall_delta_limit: u64,
    /// `maintain_p99_slo` fires when the windowed maintain p99 exceeds
    /// this many nanoseconds in both burn-rate windows. 0 disables the
    /// rule.
    pub p99_slo_ns: u64,
    /// Long burn-rate window length, in ticks.
    pub long_window_ticks: usize,
}

impl Default for HealthConfig {
    fn default() -> HealthConfig {
        HealthConfig {
            tick: Duration::from_millis(50),
            queue_depth_limit: 192,
            stall_delta_limit: 512,
            p99_slo_ns: 1_000_000_000,
            long_window_ticks: 8,
        }
    }
}

/// Overall verdict of one evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// No rule firing.
    Ok,
    /// At least one rule firing.
    Degraded,
}

impl Verdict {
    /// Lowercase name used on `/health`.
    pub fn as_str(&self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Degraded => "degraded",
        }
    }
}

/// One firing watchdog rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiringRule {
    /// Rule family name (`shard_liveness`, `queue_depth`,
    /// `backpressure_stalls`, `maintain_p99_slo`).
    pub name: &'static str,
    /// Human-readable specifics (shard id, observed vs limit, …).
    pub detail: String,
}

/// Outcome of one [`HealthMonitor::tick`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReport {
    /// Monotone tick number (1-based; tick 1 has no previous state, so
    /// delta rules cannot fire on it).
    pub tick: u64,
    /// [`Verdict::Degraded`] iff `firing` is non-empty.
    pub verdict: Verdict,
    /// Every rule firing this tick.
    pub firing: Vec<FiringRule>,
}

impl Default for HealthReport {
    fn default() -> HealthReport {
        HealthReport {
            tick: 0,
            verdict: Verdict::Ok,
            firing: Vec::new(),
        }
    }
}

impl HealthReport {
    /// Deterministic JSON: `{"health":{"verdict":…,"tick":…,"firing":[…]}}`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"health\":{\"verdict\":\"");
        out.push_str(self.verdict.as_str());
        out.push_str("\",\"tick\":");
        out.push_str(&self.tick.to_string());
        out.push_str(",\"firing\":[");
        for (i, rule) in self.firing.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"rule\":\"");
            out.push_str(rule.name);
            out.push_str("\",\"detail\":");
            json_string(&mut out, &rule.detail);
            out.push('}');
        }
        out.push_str("]}}");
        out
    }
}

/// Per-tick state carried between evaluations.
#[derive(Debug, Default)]
struct PrevTick {
    heartbeats: BTreeMap<String, u64>,
    stalls: u64,
}

/// The watchdog evaluator (pure state machine over metric samples; the
/// ticker thread owns one, unit tests drive it directly).
#[derive(Debug)]
pub struct HealthMonitor {
    config: HealthConfig,
    tick: u64,
    prev: Option<PrevTick>,
    /// Cumulative merged maintain-latency snapshots, newest last; length
    /// capped at `long_window_ticks + 1` so the front is the long-window
    /// baseline.
    maint_window: VecDeque<HistSnapshot>,
}

/// Bucket-wise window difference of two cumulative snapshots.
fn hist_diff(now: &HistSnapshot, then: &HistSnapshot) -> HistSnapshot {
    let mut buckets = now.buckets.clone();
    for (b, t) in buckets.iter_mut().zip(then.buckets.iter()) {
        *b = b.saturating_sub(*t);
    }
    HistSnapshot {
        buckets,
        count: now.count.saturating_sub(then.count),
        sum: now.sum.wrapping_sub(then.sum),
        // The true window max is unknowable from cumulative snapshots;
        // the lifetime max only loosens the (bucket-clamped) quantiles.
        max: now.max,
    }
}

impl HealthMonitor {
    /// Fresh monitor (first tick only records baselines).
    pub fn new(config: HealthConfig) -> HealthMonitor {
        HealthMonitor {
            config,
            tick: 0,
            prev: None,
            maint_window: VecDeque::new(),
        }
    }

    /// The configured cadence (owned here so the ticker thread and tests
    /// agree on it).
    pub fn config(&self) -> &HealthConfig {
        &self.config
    }

    /// Evaluate every rule against one registry snapshot.
    pub fn tick(&mut self, samples: &[MetricSample]) -> HealthReport {
        self.tick += 1;
        let mut heartbeats: BTreeMap<String, u64> = BTreeMap::new();
        let mut depths: BTreeMap<String, u64> = BTreeMap::new();
        let mut stalls = 0u64;
        let mut maint = HistSnapshot::empty();
        for s in samples {
            match &s.value {
                SampleValue::Gauge(v) if s.name == "imp_sched_heartbeat" => {
                    if let Some(shard) = s.label("shard") {
                        heartbeats.insert(shard.to_string(), *v);
                    }
                }
                SampleValue::Gauge(v) if s.name == "imp_sched_queue_depth" => {
                    if let Some(shard) = s.label("shard") {
                        depths.insert(shard.to_string(), *v);
                    }
                }
                SampleValue::Counter(v) if s.name == "imp_sched_backpressure_stalls" => {
                    stalls = *v;
                }
                SampleValue::Histogram(h) if s.name == MAINTAIN_LATENCY => {
                    maint.merge(h);
                }
                _ => {}
            }
        }

        let mut firing = Vec::new();

        // shard_liveness: heartbeat frozen while the inbox holds work.
        if let Some(prev) = &self.prev {
            for (shard, hb) in &heartbeats {
                let depth = depths.get(shard).copied().unwrap_or(0);
                if depth > 0 && prev.heartbeats.get(shard) == Some(hb) {
                    firing.push(FiringRule {
                        name: "shard_liveness",
                        detail: format!(
                            "shard {shard}: heartbeat stuck at {hb} with {depth} queued batch(es)"
                        ),
                    });
                }
            }
        }

        // queue_depth: backlog beyond the limit.
        for (shard, depth) in &depths {
            if *depth > self.config.queue_depth_limit {
                firing.push(FiringRule {
                    name: "queue_depth",
                    detail: format!(
                        "shard {shard}: {depth} queued batches > limit {}",
                        self.config.queue_depth_limit
                    ),
                });
            }
        }

        // backpressure_stalls: stall counter slope.
        if let Some(prev) = &self.prev {
            let delta = stalls.saturating_sub(prev.stalls);
            if delta >= self.config.stall_delta_limit {
                firing.push(FiringRule {
                    name: "backpressure_stalls",
                    detail: format!(
                        "{delta} inline-ingest stalls in one tick >= limit {}",
                        self.config.stall_delta_limit
                    ),
                });
            }
        }

        // maintain_p99_slo: 2-window burn rate over windowed histograms.
        if self.config.p99_slo_ns > 0 {
            if let (Some(short_base), Some(long_base)) =
                (self.maint_window.back(), self.maint_window.front())
            {
                let short = hist_diff(&maint, short_base);
                let long = hist_diff(&maint, long_base);
                if short.count > 0
                    && long.count > 0
                    && short.p99() > self.config.p99_slo_ns
                    && long.p99() > self.config.p99_slo_ns
                {
                    firing.push(FiringRule {
                        name: "maintain_p99_slo",
                        detail: format!(
                            "maintain p99 {}ns (short) / {}ns (long {}-tick) > slo {}ns",
                            short.p99(),
                            long.p99(),
                            self.maint_window.len(),
                            self.config.p99_slo_ns
                        ),
                    });
                }
            }
            self.maint_window.push_back(maint);
            while self.maint_window.len() > self.config.long_window_ticks + 1 {
                self.maint_window.pop_front();
            }
        }

        self.prev = Some(PrevTick { heartbeats, stalls });
        HealthReport {
            tick: self.tick,
            verdict: if firing.is_empty() {
                Verdict::Ok
            } else {
                Verdict::Degraded
            },
            firing,
        }
    }
}

/// Shared health surface: the ticker thread publishes here, `/health`
/// (and tests) read — no lock is held across an evaluation.
#[derive(Debug, Default)]
pub struct HealthState {
    degraded: AtomicBool,
    latest: Mutex<HealthReport>,
    trip_dump: Mutex<Option<String>>,
}

impl HealthState {
    /// Fresh, `ok`, no report yet (tick 0).
    pub fn new() -> Arc<HealthState> {
        Arc::new(HealthState::default())
    }

    /// Publish one evaluation.
    pub fn publish(&self, report: HealthReport) {
        self.degraded
            .store(report.verdict == Verdict::Degraded, Ordering::Release);
        *self.latest.lock() = report;
    }

    /// Cheap degraded check (relaxed read of the latest verdict).
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Acquire)
    }

    /// Latest full report.
    pub fn report(&self) -> HealthReport {
        self.latest.lock().clone()
    }

    /// Ticks evaluated so far.
    pub fn ticks(&self) -> u64 {
        self.latest.lock().tick
    }

    /// Store the flight dump captured at an ok→degraded transition.
    pub fn set_trip_dump(&self, dump: String) {
        *self.trip_dump.lock() = Some(dump);
    }

    /// The flight dump captured at the most recent ok→degraded
    /// transition, if any.
    pub fn trip_dump(&self) -> Option<String> {
        self.trip_dump.lock().clone()
    }
}

/// Handle owning the watchdog ticker thread; dropping it shuts the
/// thread down and joins it.
#[derive(Debug)]
pub struct HealthTicker {
    shutdown: crossbeam::channel::Sender<()>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for HealthTicker {
    fn drop(&mut self) {
        let _ = self.shutdown.send(());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Start the watchdog ticker: every `config.tick` it samples the hub's
/// registry, evaluates the monitor, publishes to `state`, emits one
/// [`ObsEvent::WatchdogFired`] per firing rule, and on the ok→degraded
/// transition captures a flight dump into the state (and stderr).
///
/// The loop blocks on `recv_timeout` against its shutdown channel
/// directly — deliberately not the shim's `select!`, whose registered
/// -waker path degrades to a 10 ms poll under contention (see the
/// `shims/crossbeam` fidelity notes) — so shutdown is immediate and the
/// cadence is exact.
pub fn spawn_health_ticker(
    obs: Arc<Obs>,
    state: Arc<HealthState>,
    config: HealthConfig,
) -> HealthTicker {
    let (shutdown, rx) = crossbeam::channel::bounded::<()>(1);
    let handle = std::thread::Builder::new()
        .name("imp-obs-health".into())
        .spawn(move || {
            let mut monitor = HealthMonitor::new(config);
            let mut was_degraded = false;
            loop {
                match rx.recv_timeout(monitor.config().tick) {
                    Ok(()) => break,
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                }
                let report = monitor.tick(&obs.registry().sample());
                let degraded = report.verdict == Verdict::Degraded;
                for rule in &report.firing {
                    obs.emit(|| ObsEvent::WatchdogFired {
                        rule: rule.name,
                        detail: rule.detail.clone(),
                    });
                }
                if degraded && !was_degraded {
                    let dump = obs.flight().dump_json(u64::MAX);
                    eprintln!(
                        "[imp] health degraded at tick {} ({}); flight dump: {dump}",
                        report.tick,
                        report
                            .firing
                            .iter()
                            .map(|r| r.name)
                            .collect::<Vec<_>>()
                            .join(",")
                    );
                    state.set_trip_dump(dump);
                }
                was_degraded = degraded;
                state.publish(report);
            }
        })
        .expect("spawn health ticker thread");
    HealthTicker {
        shutdown,
        handle: Some(handle),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::registry::MetricsRegistry;

    fn sched_samples(
        heartbeats: &[(usize, u64)],
        depths: &[(usize, u64)],
        stalls: u64,
    ) -> Vec<MetricSample> {
        let reg = MetricsRegistry::new();
        for (shard, v) in heartbeats {
            reg.gauge_with("imp_sched_heartbeat", &[("shard", &shard.to_string())])
                .set(*v);
        }
        for (shard, v) in depths {
            reg.gauge_with("imp_sched_queue_depth", &[("shard", &shard.to_string())])
                .set(*v);
        }
        reg.counter("imp_sched_backpressure_stalls").add(stalls);
        reg.sample()
    }

    #[test]
    fn liveness_fires_on_frozen_heartbeat_with_backlog() {
        let mut m = HealthMonitor::new(HealthConfig::default());
        // Tick 1: baseline only, nothing can fire.
        let r1 = m.tick(&sched_samples(&[(0, 5)], &[(0, 3)], 0));
        assert_eq!(r1.verdict, Verdict::Ok);
        // Tick 2: heartbeat unchanged, inbox non-empty → degraded.
        let r2 = m.tick(&sched_samples(&[(0, 5)], &[(0, 3)], 0));
        assert_eq!(r2.verdict, Verdict::Degraded);
        assert_eq!(r2.firing[0].name, "shard_liveness");
        assert!(r2.firing[0].detail.contains("shard 0"));
        // Tick 3: heartbeat advanced → recovered.
        let r3 = m.tick(&sched_samples(&[(0, 6)], &[(0, 3)], 0));
        assert_eq!(r3.verdict, Verdict::Ok);
    }

    #[test]
    fn liveness_ignores_idle_frozen_workers() {
        let mut m = HealthMonitor::new(HealthConfig::default());
        m.tick(&sched_samples(&[(0, 5)], &[(0, 0)], 0));
        // Frozen heartbeat with an *empty* inbox is just an idle worker.
        let r = m.tick(&sched_samples(&[(0, 5)], &[(0, 0)], 0));
        assert_eq!(r.verdict, Verdict::Ok);
    }

    #[test]
    fn queue_depth_fires_above_limit() {
        let mut m = HealthMonitor::new(HealthConfig {
            queue_depth_limit: 10,
            ..HealthConfig::default()
        });
        // Fires on the first tick already — no previous state needed.
        let r = m.tick(&sched_samples(&[(1, 1)], &[(1, 11)], 0));
        assert_eq!(r.verdict, Verdict::Degraded);
        assert_eq!(r.firing[0].name, "queue_depth");
    }

    #[test]
    fn stall_slope_fires_on_delta_not_total() {
        let mut m = HealthMonitor::new(HealthConfig {
            stall_delta_limit: 100,
            ..HealthConfig::default()
        });
        m.tick(&sched_samples(&[], &[], 1000));
        // +50 per tick: under the slope limit despite the large total.
        let r = m.tick(&sched_samples(&[], &[], 1050));
        assert_eq!(r.verdict, Verdict::Ok);
        let r = m.tick(&sched_samples(&[], &[], 1200));
        assert_eq!(r.verdict, Verdict::Degraded);
        assert_eq!(r.firing[0].name, "backpressure_stalls");
    }

    #[test]
    fn slo_needs_both_windows_burning() {
        let config = HealthConfig {
            p99_slo_ns: 1_000,
            long_window_ticks: 2,
            ..HealthConfig::default()
        };
        let mut m = HealthMonitor::new(config);
        let reg = MetricsRegistry::new();
        let h = reg.histogram_with(MAINTAIN_LATENCY, &[("template", "q")]);
        // Baseline tick with an empty histogram.
        assert_eq!(m.tick(&reg.sample()).verdict, Verdict::Ok);
        // One slow burst: short window burns, but the long window's
        // baseline is the same tick, so both windows see it → this *is*
        // a sustained signal only after it persists. First burning tick:
        h.record(50_000);
        let r = m.tick(&reg.sample());
        assert_eq!(r.verdict, Verdict::Degraded);
        assert_eq!(r.firing[0].name, "maintain_p99_slo");
        // Quiet ticks push the burst out of the short window: recovered,
        // even though the cumulative histogram still holds the slow
        // sample (this is exactly what windowing buys over cumulative
        // p99).
        let r = m.tick(&reg.sample());
        assert_eq!(r.verdict, Verdict::Ok, "{:?}", r.firing);
        let r = m.tick(&reg.sample());
        assert_eq!(r.verdict, Verdict::Ok);
    }

    #[test]
    fn report_json_shape() {
        let report = HealthReport {
            tick: 7,
            verdict: Verdict::Degraded,
            firing: vec![FiringRule {
                name: "shard_liveness",
                detail: "shard 0: \"stuck\"".into(),
            }],
        };
        let json = report.render_json();
        assert!(json.starts_with("{\"health\":{\"verdict\":\"degraded\",\"tick\":7,"));
        assert!(json.contains("\"rule\":\"shard_liveness\""));
        assert!(json.contains("\\\"stuck\\\""));
        let ok = HealthReport::default().render_json();
        assert_eq!(
            ok,
            "{\"health\":{\"verdict\":\"ok\",\"tick\":0,\"firing\":[]}}"
        );
    }

    #[test]
    fn state_tracks_transitions() {
        let state = HealthState::new();
        assert!(!state.is_degraded());
        state.publish(HealthReport {
            tick: 1,
            verdict: Verdict::Degraded,
            firing: vec![],
        });
        assert!(state.is_degraded());
        assert_eq!(state.ticks(), 1);
        state.set_trip_dump("{}".into());
        assert_eq!(state.trip_dump().as_deref(), Some("{}"));
    }
}
