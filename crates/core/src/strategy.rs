//! Maintenance strategies (paper §2, §8.5).
//!
//! * **Eager**: maintain every sketch that may be affected right after an
//!   update, optionally batching — "eager maintenance can be configured to
//!   batch updates"; maintenance triggers once the number of pending delta
//!   rows reaches the batch size.
//! * **Lazy**: updates pass straight to the database; a stale sketch is
//!   maintained only when a query needs it.
//!
//! "More advanced strategies can be designed on top of these two
//! primitives, e.g., triggering eager maintenance during times of low
//! resource usage": [`BackgroundMaintainer`] is that primitive — a thread
//! that periodically ticks maintenance while the system is otherwise
//! idle. On the in-line store a tick maintains every stale sketch on the
//! ticker thread; on the sharded scheduler ([`crate::sched`]) a tick
//! merely enqueues a maintain-stale sweep on every shard — the pool's
//! workers do the maintenance in parallel, and the `Imp` lock is held
//! only for the enqueue.

use crate::middleware::Imp;
use crossbeam::channel::{bounded, tick, Sender};
use parking_lot::Mutex;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// When sketches are maintained relative to updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MaintenanceStrategy {
    /// Maintain affected sketches as soon as `batch_size` delta rows have
    /// accumulated for them (1 = maintain on every update).
    Eager {
        /// Pending-row threshold that triggers maintenance.
        batch_size: usize,
    },
    /// Maintain a sketch only when a query needs it.
    #[default]
    Lazy,
}

/// Periodic background maintenance worker.
pub struct BackgroundMaintainer {
    stop: Sender<()>,
    handle: Option<JoinHandle<()>>,
}

impl BackgroundMaintainer {
    /// Spawn a thread that maintains all stale sketches every `interval`.
    pub fn spawn(imp: Arc<Mutex<Imp>>, interval: Duration) -> BackgroundMaintainer {
        let (stop_tx, stop_rx) = bounded::<()>(1);
        let ticker = tick(interval);
        let handle = std::thread::spawn(move || loop {
            crossbeam::channel::select! {
                recv(stop_rx) -> _ => break,
                recv(ticker) -> _ => {
                    let mut guard = imp.lock();
                    // Best effort: a failure here surfaces on the next
                    // foreground maintenance of the same sketch. Sharded
                    // stores only enqueue here; the shard workers maintain
                    // off this thread.
                    let _ = guard.tick_maintenance();
                }
            }
        });
        BackgroundMaintainer {
            stop: stop_tx,
            handle: Some(handle),
        }
    }

    /// Stop the worker and wait for it to exit.
    pub fn stop(mut self) {
        let _ = self.stop.send(());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for BackgroundMaintainer {
    fn drop(&mut self) {
        let _ = self.stop.try_send(());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}
